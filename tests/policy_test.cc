// Unit tests for the tape-selection policies (paper §3.1).

#include <gtest/gtest.h>

#include "sched/scheduler.h"

namespace tapejuke {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  TapeCandidate Cand(TapeId tape, int64_t requests,
                     std::vector<Position> positions,
                     bool serves_oldest = false) {
    return TapeCandidate{tape, requests, std::move(positions), serves_oldest};
  }

  TimingModel model_{TimingParams::Exabyte8505XL()};
  ScheduleCost cost_{&model_, 16};
  static constexpr int32_t kTapes = 4;
};

TEST_F(PolicyTest, NoWorkReturnsInvalid) {
  std::vector<TapeCandidate> tapes = {Cand(0, 0, {}), Cand(1, 0, {})};
  EXPECT_EQ(SelectTape(TapePolicy::kMaxRequests, tapes, 0, 0, kTapes, cost_),
            kInvalidTape);
}

TEST_F(PolicyTest, RoundRobinPicksNextAfterMounted) {
  std::vector<TapeCandidate> tapes = {Cand(0, 1, {0}), Cand(1, 5, {0}),
                                      Cand(2, 0, {}), Cand(3, 2, {0})};
  // Mounted 1: next in order with work is 3 (2 has none), not 0 or 1.
  EXPECT_EQ(SelectTape(TapePolicy::kRoundRobin, tapes, 1, 0, kTapes, cost_),
            3);
}

TEST_F(PolicyTest, RoundRobinWrapsAndVisitsMountedLast) {
  std::vector<TapeCandidate> tapes = {Cand(0, 0, {}), Cand(1, 5, {0}),
                                      Cand(2, 0, {}), Cand(3, 0, {})};
  // Only the mounted tape has work: it is chosen (last resort).
  EXPECT_EQ(SelectTape(TapePolicy::kRoundRobin, tapes, 1, 0, kTapes, cost_),
            1);
}

TEST_F(PolicyTest, MaxRequestsPicksLargestQueue) {
  std::vector<TapeCandidate> tapes = {Cand(0, 2, {0, 16}),
                                      Cand(1, 7, {0, 16, 32}),
                                      Cand(2, 3, {0})};
  EXPECT_EQ(
      SelectTape(TapePolicy::kMaxRequests, tapes, 2, 0, kTapes, cost_), 1);
}

TEST_F(PolicyTest, MaxRequestsTieBreaksInScanOrderFromMounted) {
  std::vector<TapeCandidate> tapes = {Cand(0, 3, {0}), Cand(1, 0, {}),
                                      Cand(2, 3, {0}), Cand(3, 3, {0})};
  // Mounted 2: scan order 2,3,0,1 -> tape 2 wins the tie.
  EXPECT_EQ(
      SelectTape(TapePolicy::kMaxRequests, tapes, 2, 0, kTapes, cost_), 2);
  // Mounted 3: scan order 3,0,1,2 -> tape 3 wins.
  EXPECT_EQ(
      SelectTape(TapePolicy::kMaxRequests, tapes, 3, 0, kTapes, cost_), 3);
}

TEST_F(PolicyTest, MaxBandwidthPrefersMountedTapeNoSwitchCost) {
  // Same request sets; the mounted tape avoids the 81 s switch.
  std::vector<TapeCandidate> tapes = {Cand(0, 2, {100, 200}),
                                      Cand(1, 2, {100, 200})};
  EXPECT_EQ(
      SelectTape(TapePolicy::kMaxBandwidth, tapes, 0, 0, kTapes, cost_), 0);
  EXPECT_EQ(
      SelectTape(TapePolicy::kMaxBandwidth, tapes, 1, 0, kTapes, cost_), 1);
}

TEST_F(PolicyTest, MaxBandwidthPrefersClusteredRequests) {
  // Tape 1's requests are clustered near the start: higher bandwidth than
  // tape 2's scattered ones, despite equal counts. (Neither is mounted.)
  std::vector<TapeCandidate> tapes = {
      Cand(1, 3, {0, 16, 32}), Cand(2, 3, {0, 3200, 6400})};
  EXPECT_EQ(
      SelectTape(TapePolicy::kMaxBandwidth, tapes, 0, 0, kTapes, cost_), 1);
}

TEST_F(PolicyTest, MaxBandwidthCanBeatMaxRequests) {
  // Five scattered requests vs three clustered ones.
  std::vector<TapeCandidate> tapes = {
      Cand(1, 5, {0, 1600, 3200, 4800, 6400}), Cand(2, 3, {0, 16, 32})};
  EXPECT_EQ(
      SelectTape(TapePolicy::kMaxRequests, tapes, 0, 0, kTapes, cost_), 1);
  EXPECT_EQ(
      SelectTape(TapePolicy::kMaxBandwidth, tapes, 0, 0, kTapes, cost_), 2);
}

TEST_F(PolicyTest, OldestRestrictsEligibleTapes) {
  std::vector<TapeCandidate> tapes = {
      Cand(0, 9, {0}, false), Cand(1, 2, {0}, true), Cand(2, 1, {0}, true)};
  EXPECT_EQ(SelectTape(TapePolicy::kOldestMaxRequests, tapes, 0, 0, kTapes,
                       cost_),
            1);
}

TEST_F(PolicyTest, OldestMaxBandwidthUsesBandwidthAmongEligible) {
  std::vector<TapeCandidate> tapes = {
      Cand(0, 9, {0}, false),
      Cand(1, 2, {0, 6400}, true),
      Cand(2, 2, {0, 16}, true)};
  EXPECT_EQ(SelectTape(TapePolicy::kOldestMaxBandwidth, tapes, 3, 0, kTapes,
                       cost_),
            2);
}

TEST_F(PolicyTest, PolicyNames) {
  EXPECT_STREQ(TapePolicyName(TapePolicy::kRoundRobin), "round-robin");
  EXPECT_STREQ(TapePolicyName(TapePolicy::kMaxRequests), "max-requests");
  EXPECT_STREQ(TapePolicyName(TapePolicy::kMaxBandwidth), "max-bandwidth");
  EXPECT_STREQ(TapePolicyName(TapePolicy::kOldestMaxRequests),
               "oldest-max-requests");
  EXPECT_STREQ(TapePolicyName(TapePolicy::kOldestMaxBandwidth),
               "oldest-max-bandwidth");
}

}  // namespace
}  // namespace tapejuke
