// Unit and randomized-equivalence tests for FlatMap / FlatSet.

#include "util/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace tapejuke {
namespace {

TEST(FlatMap, InsertFindAt) {
  FlatMap<int64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.insert(7, 70));
  EXPECT_FALSE(m.insert(7, 71));  // duplicate key keeps the first value
  m[9] = 90;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(7));
  EXPECT_FALSE(m.contains(8));
  EXPECT_EQ(m.at(7), 70);
  EXPECT_EQ(m.at(9), 90);
  EXPECT_EQ(m.find(8), m.end());
  ASSERT_NE(m.find(9), m.end());
  EXPECT_EQ(m.find(9)->second, 90);
}

TEST(FlatMap, OperatorBracketUpdates) {
  FlatMap<int64_t, int> m;
  m[3] = 1;
  m[3] += 5;
  EXPECT_EQ(m.at(3), 6);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseAndReinsert) {
  FlatMap<int64_t, int> m;
  for (int64_t k = 0; k < 100; ++k) m[k] = static_cast<int>(k);
  EXPECT_EQ(m.erase(50), 1u);
  EXPECT_EQ(m.erase(50), 0u);
  EXPECT_FALSE(m.contains(50));
  EXPECT_EQ(m.size(), 99u);
  // Every other key must still resolve after backward-shift deletion.
  for (int64_t k = 0; k < 100; ++k) {
    if (k == 50) continue;
    ASSERT_TRUE(m.contains(k)) << k;
    ASSERT_EQ(m.at(k), static_cast<int>(k));
  }
  m[50] = -1;
  EXPECT_EQ(m.at(50), -1);
  EXPECT_EQ(m.size(), 100u);
}

TEST(FlatMap, IterationVisitsEveryEntryOnce) {
  FlatMap<int64_t, int> m;
  for (int64_t k = 0; k < 1000; ++k) m[k * 3] = static_cast<int>(k);
  std::map<int64_t, int> seen;
  for (const auto& kv : m) {
    ASSERT_TRUE(seen.emplace(kv.first, kv.second).second)
        << "duplicate key " << kv.first;
  }
  EXPECT_EQ(seen.size(), 1000u);
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(seen.at(k * 3), static_cast<int>(k));
  }
}

TEST(FlatMap, ClearThenReuse) {
  FlatMap<int64_t, int> m;
  for (int64_t k = 0; k < 64; ++k) m[k] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(3));
  m[3] = 2;
  EXPECT_EQ(m.at(3), 2);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ReserveAvoidsInvalidation) {
  FlatMap<int64_t, int> m;
  m.reserve(4096);
  m[1] = 10;
  const int* p = &m.at(1);
  for (int64_t k = 2; k < 4000; ++k) m[k] = 0;
  EXPECT_EQ(&m.at(1), p);  // no rehash within the reserved capacity
}

TEST(FlatMap, AdversarialSameBucketKeys) {
  // Keys spaced by the table capacity would collide under a masked identity
  // hash; the mixer must still spread them, and probing must resolve them.
  FlatMap<int64_t, int> m;
  for (int64_t k = 0; k < 200; ++k) m[k << 32] = static_cast<int>(k);
  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_EQ(m.at(k << 32), static_cast<int>(k));
  }
}

TEST(FlatMap, RandomizedEquivalenceWithStdMap) {
  Rng rng(42);
  FlatMap<int64_t, int64_t> flat;
  std::unordered_map<int64_t, int64_t> ref;
  for (int step = 0; step < 50000; ++step) {
    const int64_t key = static_cast<int64_t>(rng.NextUint64() % 512);
    const uint64_t op = rng.NextUint64() % 3;
    if (op == 0) {
      flat[key] = key * 2;
      ref[key] = key * 2;
    } else if (op == 1) {
      ASSERT_EQ(flat.erase(key), ref.erase(key));
    } else {
      ASSERT_EQ(flat.contains(key), ref.count(key) > 0);
      if (ref.count(key)) ASSERT_EQ(flat.at(key), ref.at(key));
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
}

TEST(FlatSet, InsertContainsErase) {
  FlatSet<int64_t> s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
  EXPECT_EQ(s.erase(5), 1u);
  EXPECT_EQ(s.erase(5), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet, RandomizedEquivalenceWithStdSet) {
  Rng rng(7);
  FlatSet<int64_t> flat;
  std::unordered_set<int64_t> ref;
  for (int step = 0; step < 50000; ++step) {
    const int64_t key = static_cast<int64_t>(rng.NextUint64() % 300);
    if (rng.NextUint64() % 2 == 0) {
      ASSERT_EQ(flat.insert(key), ref.insert(key).second);
    } else {
      ASSERT_EQ(flat.erase(key), ref.erase(key));
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  std::set<int64_t> iterated;
  for (int64_t k : flat) iterated.insert(k);
  EXPECT_EQ(iterated, std::set<int64_t>(ref.begin(), ref.end()));
}

}  // namespace
}  // namespace tapejuke
