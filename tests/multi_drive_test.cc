// Tests for the multi-drive jukebox extension.

#include "sim/multi_drive.h"

#include <gtest/gtest.h>

#include "layout/placement.h"
#include "sched/greedy_scheduler.h"

namespace tapejuke {
namespace {

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;
  return config;
}

SimulationConfig ShortSim(int64_t queue = 60) {
  SimulationConfig config;
  config.duration_seconds = 300'000;
  config.warmup_seconds = 30'000;
  config.workload.queue_length = queue;
  config.workload.seed = 31;
  return config;
}

struct Rig {
  explicit Rig(const LayoutSpec& layout = LayoutSpec{})
      : jukebox(PaperJukebox()),
        catalog(LayoutBuilder::Build(&jukebox, layout).value()) {}
  Jukebox jukebox;
  Catalog catalog;
};

SimulationResult RunMulti(int32_t num_drives, int64_t queue = 60,
                          MultiDriveStats* stats = nullptr) {
  Rig rig;
  MultiDriveConfig drives;
  drives.num_drives = num_drives;
  MultiDriveSimulator sim(&rig.jukebox, &rig.catalog, drives,
                          ShortSim(queue));
  const SimulationResult result = sim.Run();
  if (stats != nullptr) *stats = sim.stats();
  return result;
}

TEST(MultiDriveConfig, Validation) {
  MultiDriveConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_drives = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(MultiDrive, SingleDriveMatchesSingleDriveSimulatorClosely) {
  const SimulationResult multi = RunMulti(1);
  Rig rig;
  GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                        TapePolicy::kMaxBandwidth, /*dynamic=*/true);
  Simulator sim(&rig.jukebox, &rig.catalog, &sched, ShortSim());
  const SimulationResult single = sim.Run();
  // Same model, same policy; small differences are allowed because the
  // multi-drive dispatcher wakes at slightly different instants.
  EXPECT_NEAR(multi.throughput_mb_per_s / single.throughput_mb_per_s, 1.0,
              0.05);
  EXPECT_NEAR(multi.mean_delay_seconds / single.mean_delay_seconds, 1.0,
              0.10);
}

TEST(MultiDrive, MoreDrivesMoreThroughputLessDelay) {
  const SimulationResult one = RunMulti(1, /*queue=*/120);
  const SimulationResult two = RunMulti(2, /*queue=*/120);
  const SimulationResult four = RunMulti(4, /*queue=*/120);
  EXPECT_GT(two.requests_per_minute, 1.3 * one.requests_per_minute);
  EXPECT_GT(four.requests_per_minute, two.requests_per_minute);
  EXPECT_LT(two.mean_delay_seconds, one.mean_delay_seconds);
  EXPECT_LT(four.mean_delay_seconds, two.mean_delay_seconds);
}

TEST(MultiDrive, ScalingIsRoughlyLinearAtHighLoad) {
  const SimulationResult one = RunMulti(1, 120);
  const SimulationResult four = RunMulti(4, 120);
  // Competing effects keep scaling near (but not exactly) 4x: robot
  // contention, claim conflicts, and per-drive batch fragmentation hurt;
  // overlapping one drive's rewind/eject with the others' reads helps
  // (that dead time is serialized in the single-drive pipeline), so mild
  // super-linearity is possible.
  const double speedup = four.requests_per_minute / one.requests_per_minute;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 5.0);
}

TEST(MultiDrive, RobotContentionIsObserved) {
  MultiDriveStats stats;
  RunMulti(4, 120, &stats);
  EXPECT_GT(stats.robot_wait_seconds, 0.0);
}

TEST(MultiDrive, Deterministic) {
  const SimulationResult a = RunMulti(3);
  const SimulationResult b = RunMulti(3);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_DOUBLE_EQ(a.mean_delay_seconds, b.mean_delay_seconds);
}

TEST(MultiDrive, ClosedPopulationIsConserved) {
  const SimulationResult result = RunMulti(2, 50);
  EXPECT_NEAR(result.mean_outstanding, 50.0, 0.5);
}

TEST(MultiDrive, OpenModelWorks) {
  Rig rig;
  MultiDriveConfig drives;
  drives.num_drives = 2;
  SimulationConfig sim_config = ShortSim();
  sim_config.workload.model = QueuingModel::kOpen;
  sim_config.workload.mean_interarrival_seconds = 60;
  MultiDriveSimulator sim(&rig.jukebox, &rig.catalog, drives, sim_config);
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 100);
  // Two drives comfortably absorb a 1-per-minute stream.
  EXPECT_NEAR(result.requests_per_minute, 1.0, 0.2);
}

TEST(MultiDrive, ReplicationHelpsHereToo) {
  LayoutSpec replicated;
  replicated.num_replicas = 9;
  replicated.start_position = 1.0;
  Rig plain;
  Rig full(replicated);
  MultiDriveConfig drives;
  drives.num_drives = 2;
  MultiDriveSimulator sim_plain(&plain.jukebox, &plain.catalog, drives,
                                ShortSim(120));
  MultiDriveSimulator sim_full(&full.jukebox, &full.catalog, drives,
                               ShortSim(120));
  const SimulationResult a = sim_plain.Run();
  const SimulationResult b = sim_full.Run();
  EXPECT_GT(b.requests_per_minute, a.requests_per_minute);
}

TEST(MultiDriveDeathTest, MoreDrivesThanTapesAborts) {
  Rig rig;
  MultiDriveConfig drives;
  drives.num_drives = 99;
  EXPECT_DEATH(MultiDriveSimulator(&rig.jukebox, &rig.catalog, drives,
                                   ShortSim()),
               "more drives than tapes");
}

}  // namespace
}  // namespace tapejuke
