// End-to-end qualitative reproduction tests: the paper's headline claims
// must hold in shortened simulation runs. Each test states the claim and
// the paper section it comes from.

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace tapejuke {
namespace {

ExperimentConfig Base(int64_t queue = 60, uint64_t seed = 101) {
  ExperimentConfig config;
  config.layout.hot_fraction = 0.10;           // PH-10
  config.sim.workload.hot_request_fraction = 0.40;  // RH-40
  config.sim.workload.queue_length = queue;
  config.sim.workload.seed = seed;
  config.sim.duration_seconds = 600'000;
  config.sim.warmup_seconds = 60'000;
  return config;
}

SimulationResult RunAlgo(ExperimentConfig config, const std::string& algo) {
  config.algorithm = AlgorithmSpec::Parse(algo).value();
  return ExperimentRunner::Run(config).value().sim;
}

// §4.2 / Figure 4: FIFO is catastrophically worse than any batching
// scheduler (every retrieval pays a switch and a long locate).
TEST(PaperClaims, FifoIsFarWorse) {
  const SimulationResult fifo = RunAlgo(Base(), "fifo");
  const SimulationResult dyn = RunAlgo(Base(), "dynamic-max-bandwidth");
  EXPECT_GT(dyn.requests_per_minute, 2.5 * fifo.requests_per_minute);
  EXPECT_LT(dyn.mean_delay_seconds, 0.5 * fifo.mean_delay_seconds);
}

// §4.2: dynamic variants dominate their static counterparts at heavy load.
TEST(PaperClaims, DynamicBeatsStaticAtHeavyLoad) {
  const ExperimentConfig heavy = Base(/*queue=*/120);
  const SimulationResult stat = RunAlgo(heavy, "static-max-bandwidth");
  const SimulationResult dyn = RunAlgo(heavy, "dynamic-max-bandwidth");
  EXPECT_GT(dyn.requests_per_minute, stat.requests_per_minute);
}

// §4.2: at light load, static max-bandwidth is comparable to dynamic (few
// arrivals land during a sweep).
TEST(PaperClaims, StaticComparableAtLightLoad) {
  const ExperimentConfig light = Base(/*queue=*/10);
  const SimulationResult stat = RunAlgo(light, "static-max-bandwidth");
  const SimulationResult dyn = RunAlgo(light, "dynamic-max-bandwidth");
  EXPECT_NEAR(stat.requests_per_minute / dyn.requests_per_minute, 1.0, 0.08);
}

// §4.6: with no replicas the envelope algorithm degenerates into the
// dynamic algorithm — results are bit-identical, not merely similar.
TEST(PaperClaims, EnvelopeDegeneratesToDynamicWithoutReplication) {
  const SimulationResult dyn = RunAlgo(Base(), "dynamic-max-bandwidth");
  const SimulationResult env = RunAlgo(Base(), "envelope-max-bandwidth");
  EXPECT_EQ(dyn.completed_requests, env.completed_requests);
  EXPECT_DOUBLE_EQ(dyn.throughput_mb_per_s, env.throughput_mb_per_s);
  EXPECT_DOUBLE_EQ(dyn.mean_delay_seconds, env.mean_delay_seconds);
  EXPECT_EQ(dyn.counters.tape_switches, env.counters.tape_switches);
}

// §4.4 / Figure 6: replicating hot data at the tape ends improves both
// throughput and response time, and reduces tape switching.
TEST(PaperClaims, FullReplicationBeatsNoReplication) {
  ExperimentConfig none = Base();
  none.layout.num_replicas = 0;
  none.layout.start_position = 0.0;  // best placement without replication
  ExperimentConfig full = Base();
  full.layout.num_replicas = 9;
  full.layout.start_position = 1.0;  // best placement with replication
  const SimulationResult r0 = RunAlgo(none, "dynamic-max-bandwidth");
  const SimulationResult r9 = RunAlgo(full, "dynamic-max-bandwidth");
  EXPECT_GT(r9.requests_per_minute, 1.05 * r0.requests_per_minute);
  EXPECT_LT(r9.mean_delay_seconds, 0.95 * r0.mean_delay_seconds);
  EXPECT_LT(r9.tape_switches_per_hour, r0.tape_switches_per_hour);
}

// §4.3 / Figure 5: without replication hot data belongs at the beginning
// of the tape.
TEST(PaperClaims, NoReplicationHotAtBeginning) {
  ExperimentConfig begin = Base();
  begin.layout.start_position = 0.0;
  ExperimentConfig end = Base();
  end.layout.start_position = 1.0;
  const SimulationResult r_begin = RunAlgo(begin, "dynamic-max-bandwidth");
  const SimulationResult r_end = RunAlgo(end, "dynamic-max-bandwidth");
  EXPECT_GT(r_begin.requests_per_minute, r_end.requests_per_minute);
}

// §4.5 / Figure 7: with full replication the preference flips — hot data
// and replicas belong at the end of the tape.
TEST(PaperClaims, FullReplicationHotAtEnd) {
  ExperimentConfig begin = Base();
  begin.layout.num_replicas = 9;
  begin.layout.start_position = 0.0;
  ExperimentConfig end = Base();
  end.layout.num_replicas = 9;
  end.layout.start_position = 1.0;
  const SimulationResult r_begin = RunAlgo(begin, "envelope-max-bandwidth");
  const SimulationResult r_end = RunAlgo(end, "envelope-max-bandwidth");
  EXPECT_GT(r_end.requests_per_minute, r_begin.requests_per_minute);
}

// §4.6 / Figure 8: with replication, the envelope algorithm beats the
// plain dynamic algorithm.
TEST(PaperClaims, EnvelopeBeatsDynamicWithReplication) {
  ExperimentConfig config = Base();
  config.layout.num_replicas = 9;
  config.layout.start_position = 1.0;
  const SimulationResult dyn = RunAlgo(config, "dynamic-max-bandwidth");
  const SimulationResult env = RunAlgo(config, "envelope-max-bandwidth");
  EXPECT_GT(env.requests_per_minute, dyn.requests_per_minute);
  EXPECT_LT(env.mean_delay_seconds, dyn.mean_delay_seconds);
}

// §4.7 / Figure 9: more skew (RH) is uniformly better.
TEST(PaperClaims, MoreSkewIsBetter) {
  double last_throughput = 0;
  for (const double rh : {0.2, 0.5, 0.8}) {
    ExperimentConfig config = Base();
    config.layout.num_replicas = 9;
    config.layout.start_position = 1.0;
    config.sim.workload.hot_request_fraction = rh;
    const SimulationResult r = RunAlgo(config, "envelope-max-bandwidth");
    EXPECT_GT(r.requests_per_minute, last_throughput) << "RH=" << rh;
    last_throughput = r.requests_per_minute;
  }
}

// §4.2 (open-queuing caveat): at high open-queuing load the algorithm
// choice affects delay but hardly the throughput (arrivals cap it).
TEST(PaperClaims, OpenQueuingHighLoadThroughputIsArrivalBound) {
  ExperimentConfig config = Base();
  config.sim.workload.model = QueuingModel::kOpen;
  // Interarrival slightly above the service capability: saturation.
  config.sim.workload.mean_interarrival_seconds = 55.0;
  const SimulationResult stat = RunAlgo(config, "static-max-bandwidth");
  const SimulationResult dyn = RunAlgo(config, "dynamic-max-bandwidth");
  EXPECT_NEAR(stat.requests_per_minute / dyn.requests_per_minute, 1.0, 0.1);
  EXPECT_LT(dyn.mean_delay_seconds, stat.mean_delay_seconds);
}

// §4.1 / Figure 3: halving the transfer size from 16 MB to 8 MB costs
// close to a factor of two in byte throughput.
TEST(PaperClaims, SmallTransferSizeCollapsesThroughput) {
  ExperimentConfig big = Base();
  big.jukebox.block_size_mb = 16;
  ExperimentConfig small = Base();
  small.jukebox.block_size_mb = 8;
  const SimulationResult r16 = RunAlgo(big, "dynamic-max-bandwidth");
  const SimulationResult r8 = RunAlgo(small, "dynamic-max-bandwidth");
  const double ratio = r16.throughput_mb_per_s / r8.throughput_mb_per_s;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.5);
}

// §4.3 / Figure 5: the vertical layout beats horizontal placements except
// under very intense workloads.
TEST(PaperClaims, VerticalLayoutGoodAtModerateLoad) {
  ExperimentConfig horizontal = Base();
  horizontal.layout.layout = HotLayout::kHorizontal;
  horizontal.layout.start_position = 0.0;
  ExperimentConfig vertical = Base();
  vertical.layout.layout = HotLayout::kVertical;
  const SimulationResult h = RunAlgo(horizontal, "dynamic-max-bandwidth");
  const SimulationResult v = RunAlgo(vertical, "dynamic-max-bandwidth");
  EXPECT_GT(v.requests_per_minute, 0.95 * h.requests_per_minute);
}

}  // namespace
}  // namespace tapejuke
