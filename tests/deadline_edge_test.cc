// Deadline edge cases: expiry landing exactly on the warm-up boundary
// (metrics window clipping), expiry of a request still staged in the
// scheduler's arrival batch, and expiry racing a failover re-enqueue —
// the latter two under the ValidatingScheduler with validate_envelope, so
// any contract violation aborts the test.

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.h"
#include "sched/validating_scheduler.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

namespace tapejuke {
namespace {

TEST(DeadlineWarmupBoundary, ExpiryAtBoundaryStaysOutOfMeasuredWindow) {
  MetricsCollector metrics(/*warmup_seconds=*/100.0, /*block_size_mb=*/16);
  metrics.ConfigureClasses(2);

  // Expires exactly at the warm-up boundary: whole-run conservation counts
  // it, the measured per-class window does not (the window is (warmup,
  // end], matching completions).
  metrics.OnArrival(50.0);
  metrics.OnExpired(/*arrival=*/50.0, /*now=*/100.0, /*tenant=*/0);
  // Expires just past the boundary: lands in the per-class window.
  metrics.OnArrival(60.0);
  metrics.OnExpired(60.0, 100.5, 0);

  const SimulationResult result =
      metrics.Finalize(/*end_time=*/200.0, JukeboxCounters{}, nullptr);
  EXPECT_EQ(result.expired_requests, 2);
  ASSERT_EQ(result.tenant_classes.size(), 2u);
  EXPECT_EQ(result.tenant_classes[0].expired, 1);
  EXPECT_EQ(result.issued_requests, 2);
  EXPECT_EQ(result.outstanding_at_end, 0);
}

SimulationConfig DeadlineSim(uint64_t seed) {
  SimulationConfig sim;
  sim.duration_seconds = 200'000;
  sim.warmup_seconds = 0;
  sim.workload.model = QueuingModel::kOpen;
  // Past saturation for one drive, so the queue backs up and short
  // deadlines fire while requests are still queued.
  sim.workload.mean_interarrival_seconds = 40;
  sim.workload.seed = seed;
  TenantClassConfig strict;
  strict.weight = 0.5;
  strict.deadline_seconds = 2000;
  TenantClassConfig loose;
  loose.weight = 0.5;
  sim.workload.tenant_classes = {strict, loose};
  return sim;
}

TEST(DeadlineEdge, StagedArrivalBatchRequestsExpire) {
  JukeboxConfig jukebox_config;
  jukebox_config.num_tapes = 10;
  jukebox_config.block_size_mb = 16;
  Jukebox jukebox(jukebox_config);
  const Catalog catalog =
      LayoutBuilder::Build(&jukebox, LayoutSpec{}).value();

  // Envelope scheduler with a large arrival batch: at a 40 s mean gap a
  // 2000 s deadline can pass while a request is still sitting in the
  // staged buffer, exercising the AbsorbStagedToPending path inside
  // EvictExpired. validate_envelope re-checks the envelope invariant on
  // every mutation.
  AlgorithmSpec spec = AlgorithmSpec::Parse("envelope-max-requests").value();
  spec.options.arrival_batch = 32;
  spec.options.validate_envelope = true;
  ValidatingScheduler scheduler(CreateScheduler(spec, &jukebox, &catalog),
                                &jukebox, &catalog);

  Simulator simulator(&jukebox, &catalog, &scheduler, DeadlineSim(23));
  const SimulationResult result = simulator.Run();

  ASSERT_TRUE(result.overload_enabled);
  EXPECT_GT(result.expired_requests, 0);
  EXPECT_GT(result.completed_requests, 0);
  EXPECT_EQ(result.completed_total + result.failed_requests +
                result.expired_requests + result.shed_requests +
                result.outstanding_at_end,
            result.issued_requests);
  // The strict class expired; the deadline-free class never does.
  ASSERT_EQ(result.tenant_classes.size(), 2u);
  EXPECT_GT(result.tenant_classes[0].expired, 0);
  EXPECT_EQ(result.tenant_classes[1].expired, 0);
  // Everything the scheduler saw was served, expired, or is still queued.
  EXPECT_EQ(scheduler.arrivals_seen(),
            scheduler.requests_served() + result.expired_requests +
                scheduler.outstanding());
}

TEST(DeadlineEdge, ExpiryRacesFailoverReenqueue) {
  JukeboxConfig jukebox_config;
  jukebox_config.num_tapes = 10;
  jukebox_config.block_size_mb = 16;
  Jukebox jukebox(jukebox_config);
  LayoutSpec layout;
  layout.num_replicas = 2;
  layout.start_position = 1.0;
  Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();

  AlgorithmSpec spec = AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
  ValidatingScheduler scheduler(CreateScheduler(spec, &jukebox, &catalog),
                                &jukebox, &catalog);

  // Heavy fault mix on top of the deadline workload: failovers re-enqueue
  // requests whose deadline may already have passed, and whole-tape loss
  // can drain sweeps holding past-deadline requests. The simulator must
  // settle those as expired, never serve them, and keep conservation.
  SimulationConfig sim = DeadlineSim(29);
  sim.faults.permanent_media_error_prob = 2e-3;
  sim.faults.whole_tape_fraction = 0.3;
  sim.faults.transient_read_error_prob = 0.02;
  sim.faults.retry_backoff_base_seconds = 2.0;
  sim.faults.retry_backoff_max_seconds = 60.0;

  Simulator simulator(&jukebox, &catalog, &scheduler, sim);
  const SimulationResult result = simulator.Run();

  ASSERT_TRUE(result.fault_injection);
  ASSERT_TRUE(result.overload_enabled);
  EXPECT_GT(result.expired_requests, 0);
  EXPECT_GT(result.faults.failovers, 0);
  EXPECT_GT(result.completed_requests, 0);
  EXPECT_EQ(result.completed_total + result.failed_requests +
                result.expired_requests + result.shed_requests +
                result.outstanding_at_end,
            result.issued_requests);
}

}  // namespace
}  // namespace tapejuke
