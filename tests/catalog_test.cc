// Unit tests for the replica catalog.

#include "layout/catalog.h"

#include <gtest/gtest.h>

namespace tapejuke {
namespace {

TEST(Catalog, BasicAccessors) {
  std::vector<std::vector<Replica>> replicas = {
      {{0, 0, 0}},            // block 0 (hot): one copy on tape 0
      {{1, 2, 32}, {2, 5, 80}},  // block 1 (cold? no: ids < num_hot are hot)
      {{0, 1, 16}},
  };
  Catalog catalog(std::move(replicas), /*num_hot=*/2);
  EXPECT_EQ(catalog.num_blocks(), 3);
  EXPECT_EQ(catalog.num_hot_blocks(), 2);
  EXPECT_EQ(catalog.num_cold_blocks(), 1);
  EXPECT_TRUE(catalog.IsHot(0));
  EXPECT_TRUE(catalog.IsHot(1));
  EXPECT_FALSE(catalog.IsHot(2));
  EXPECT_EQ(catalog.TotalCopies(), 4);
  EXPECT_EQ(catalog.ReplicasOf(1).size(), 2u);
}

TEST(Catalog, ReplicaOnFindsByTape) {
  std::vector<std::vector<Replica>> replicas = {
      {{0, 0, 0}, {3, 7, 112}},
  };
  Catalog catalog(std::move(replicas), 1);
  const Replica* on3 = catalog.ReplicaOn(0, 3);
  ASSERT_NE(on3, nullptr);
  EXPECT_EQ(on3->position, 112);
  EXPECT_EQ(catalog.ReplicaOn(0, 1), nullptr);
}

Catalog ThreeBlockCatalog() {
  // block 0: copies on tapes 0 and 1; block 1: copies on tapes 1 and 2;
  // block 2: single copy on tape 1.
  std::vector<std::vector<Replica>> replicas = {
      {{0, 0, 0}, {1, 3, 48}},
      {{1, 0, 0}, {2, 2, 32}},
      {{1, 5, 80}},
  };
  return Catalog(std::move(replicas), /*num_hot=*/1);
}

TEST(CatalogDeadMask, FreshCatalogIsFullyLive) {
  const Catalog catalog = ThreeBlockCatalog();
  EXPECT_EQ(catalog.dead_replicas(), 0);
  EXPECT_TRUE(catalog.HasAnyLive());
  for (BlockId b = 0; b < catalog.num_blocks(); ++b) {
    EXPECT_TRUE(catalog.HasLiveReplica(b));
    EXPECT_EQ(catalog.LiveReplicaCount(b),
              static_cast<int64_t>(catalog.ReplicasOf(b).size()));
    for (const Replica& r : catalog.ReplicasOf(b)) {
      EXPECT_TRUE(catalog.IsAlive(r));
    }
  }
}

TEST(CatalogDeadMask, MarkReplicaDeadMasksExactlyOneCopy) {
  Catalog catalog = ThreeBlockCatalog();
  EXPECT_TRUE(catalog.MarkReplicaDead(0, 1));
  EXPECT_EQ(catalog.dead_replicas(), 1);
  EXPECT_FALSE(catalog.IsAlive(*catalog.ReplicaOn(0, 1)));
  EXPECT_TRUE(catalog.IsAlive(*catalog.ReplicaOn(0, 0)));
  EXPECT_EQ(catalog.LiveReplicaCount(0), 1);
  EXPECT_TRUE(catalog.HasLiveReplica(0));
  // The same tape's copies of other blocks are untouched.
  EXPECT_TRUE(catalog.IsAlive(*catalog.ReplicaOn(1, 1)));
  EXPECT_TRUE(catalog.IsAlive(*catalog.ReplicaOn(2, 1)));
  // LiveReplicaOn: masked copy is invisible, existing-but-dead != absent.
  EXPECT_EQ(catalog.LiveReplicaOn(0, 1), nullptr);
  EXPECT_NE(catalog.ReplicaOn(0, 1), nullptr);
  EXPECT_NE(catalog.LiveReplicaOn(0, 0), nullptr);
}

TEST(CatalogDeadMask, MarkReplicaDeadIsIdempotentAndChecksExistence) {
  Catalog catalog = ThreeBlockCatalog();
  EXPECT_TRUE(catalog.MarkReplicaDead(0, 1));
  EXPECT_FALSE(catalog.MarkReplicaDead(0, 1)) << "already dead";
  EXPECT_FALSE(catalog.MarkReplicaDead(0, 2)) << "no copy on tape 2";
  EXPECT_EQ(catalog.dead_replicas(), 1);
}

TEST(CatalogDeadMask, MarkTapeDeadMasksEveryCopyOnTheTape) {
  Catalog catalog = ThreeBlockCatalog();
  EXPECT_EQ(catalog.MarkTapeDead(1), 3);  // blocks 0, 1, and 2 each lose one
  EXPECT_EQ(catalog.dead_replicas(), 3);
  EXPECT_EQ(catalog.LiveReplicaCount(0), 1);
  EXPECT_EQ(catalog.LiveReplicaCount(1), 1);
  EXPECT_EQ(catalog.LiveReplicaCount(2), 0);
  EXPECT_FALSE(catalog.HasLiveReplica(2)) << "block 2 lost its only copy";
  EXPECT_TRUE(catalog.HasAnyLive());
  // Re-masking the same tape masks nothing new.
  EXPECT_EQ(catalog.MarkTapeDead(1), 0);
  EXPECT_EQ(catalog.dead_replicas(), 3);
}

TEST(CatalogDeadMask, WholeArchiveCanDie) {
  Catalog catalog = ThreeBlockCatalog();
  catalog.MarkTapeDead(0);
  catalog.MarkTapeDead(1);
  EXPECT_TRUE(catalog.HasAnyLive()) << "block 1 still lives on tape 2";
  catalog.MarkTapeDead(2);
  EXPECT_FALSE(catalog.HasAnyLive());
  for (BlockId b = 0; b < catalog.num_blocks(); ++b) {
    EXPECT_FALSE(catalog.HasLiveReplica(b));
  }
}

TEST(CatalogDeadMask, AddReplicaAfterMaskingKeepsIndicesAligned) {
  // AddReplica inserts into the middle of the CSR array; the dead mask
  // must shift with it so previously masked replicas stay masked.
  Catalog catalog = ThreeBlockCatalog();
  EXPECT_TRUE(catalog.MarkReplicaDead(1, 2));
  EXPECT_TRUE(catalog.MarkReplicaDead(2, 1));
  // Insert a copy of block 0 on tape 3 — everything after block 0 shifts.
  catalog.AddReplica(0, Replica{3, 1, 16});
  EXPECT_EQ(catalog.dead_replicas(), 2);
  EXPECT_TRUE(catalog.IsAlive(*catalog.ReplicaOn(0, 3)));
  EXPECT_FALSE(catalog.IsAlive(*catalog.ReplicaOn(1, 2)));
  EXPECT_FALSE(catalog.IsAlive(*catalog.ReplicaOn(2, 1)));
  EXPECT_TRUE(catalog.IsAlive(*catalog.ReplicaOn(1, 1)));
  // A new copy restores availability for a fully dead block.
  EXPECT_FALSE(catalog.HasLiveReplica(2));
  catalog.AddReplica(2, Replica{0, 7, 112});
  EXPECT_TRUE(catalog.HasLiveReplica(2));
  EXPECT_EQ(catalog.LiveReplicaCount(2), 1);
}

TEST(CatalogDeathTest, RejectsEmptyReplicaList) {
  std::vector<std::vector<Replica>> replicas = {{}};
  EXPECT_DEATH(Catalog(std::move(replicas), 0), "at least one replica");
}

TEST(CatalogDeathTest, RejectsDuplicateTapes) {
  std::vector<std::vector<Replica>> replicas = {{{0, 0, 0}, {0, 5, 80}}};
  EXPECT_DEATH(Catalog(std::move(replicas), 0), "duplicate replica tape");
}

TEST(CatalogDeathTest, RejectsBadHotCount) {
  std::vector<std::vector<Replica>> replicas = {{{0, 0, 0}}};
  EXPECT_DEATH(Catalog(std::move(replicas), 2), "");
}

}  // namespace
}  // namespace tapejuke
