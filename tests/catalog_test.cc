// Unit tests for the replica catalog.

#include "layout/catalog.h"

#include <gtest/gtest.h>

namespace tapejuke {
namespace {

TEST(Catalog, BasicAccessors) {
  std::vector<std::vector<Replica>> replicas = {
      {{0, 0, 0}},            // block 0 (hot): one copy on tape 0
      {{1, 2, 32}, {2, 5, 80}},  // block 1 (cold? no: ids < num_hot are hot)
      {{0, 1, 16}},
  };
  Catalog catalog(std::move(replicas), /*num_hot=*/2);
  EXPECT_EQ(catalog.num_blocks(), 3);
  EXPECT_EQ(catalog.num_hot_blocks(), 2);
  EXPECT_EQ(catalog.num_cold_blocks(), 1);
  EXPECT_TRUE(catalog.IsHot(0));
  EXPECT_TRUE(catalog.IsHot(1));
  EXPECT_FALSE(catalog.IsHot(2));
  EXPECT_EQ(catalog.TotalCopies(), 4);
  EXPECT_EQ(catalog.ReplicasOf(1).size(), 2u);
}

TEST(Catalog, ReplicaOnFindsByTape) {
  std::vector<std::vector<Replica>> replicas = {
      {{0, 0, 0}, {3, 7, 112}},
  };
  Catalog catalog(std::move(replicas), 1);
  const Replica* on3 = catalog.ReplicaOn(0, 3);
  ASSERT_NE(on3, nullptr);
  EXPECT_EQ(on3->position, 112);
  EXPECT_EQ(catalog.ReplicaOn(0, 1), nullptr);
}

TEST(CatalogDeathTest, RejectsEmptyReplicaList) {
  std::vector<std::vector<Replica>> replicas = {{}};
  EXPECT_DEATH(Catalog(std::move(replicas), 0), "at least one replica");
}

TEST(CatalogDeathTest, RejectsDuplicateTapes) {
  std::vector<std::vector<Replica>> replicas = {{{0, 0, 0}, {0, 5, 80}}};
  EXPECT_DEATH(Catalog(std::move(replicas), 0), "duplicate replica tape");
}

TEST(CatalogDeathTest, RejectsBadHotCount) {
  std::vector<std::vector<Replica>> replicas = {{{0, 0, 0}}};
  EXPECT_DEATH(Catalog(std::move(replicas), 2), "");
}

}  // namespace
}  // namespace tapejuke
