// Tests for the fixed-size worker pool behind the sweep runner.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tapejuke {
namespace {

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPool, HonorsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  ThreadPool defaulted(0);
  EXPECT_EQ(defaulted.num_threads(), ThreadPool::DefaultThreads());
}

TEST(ThreadPool, SubmitRunsTaskAndFutureCompletes) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  std::future<void> done = pool.Submit([&] { value = 42; });
  done.wait();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { ++count; });
    }
  }  // ~ThreadPool must finish every queued task before joining
  EXPECT_EQ(count, 100);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kCount = 257;
  std::vector<std::atomic<int>> visits(kCount);
  pool.ParallelFor(0, kCount, [&](int64_t i) { ++visits[i]; });
  for (int64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i], 1) << i;
  }
}

TEST(ThreadPool, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(2);
  std::set<int64_t> seen;
  std::mutex mutex;
  pool.ParallelFor(10, 20, [&](int64_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 10);
  EXPECT_EQ(*seen.rbegin(), 19);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  // With one worker the loop body runs on the calling thread, in index
  // order — the serial reproduction path for --threads=1.
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int64_t> order;
  pool.ParallelFor(0, 8, [&](int64_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 8u);
  for (int64_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, SubmitDeliversExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> done =
      pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(done.get(), std::runtime_error);
  // The worker survived the throw and still runs subsequent tasks.
  std::atomic<int> value{0};
  pool.Submit([&] { value = 7; }).wait();
  EXPECT_EQ(value, 7);
}

TEST(ThreadPool, ParallelForRethrowsAfterCompletingRange) {
  ThreadPool pool(4);
  constexpr int64_t kCount = 64;
  std::vector<std::atomic<int>> visits(kCount);
  try {
    pool.ParallelFor(0, kCount, [&](int64_t i) {
      ++visits[i];
      if (i == 13) throw std::runtime_error("index 13");
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 13");
  }
  // The failing index must not have cancelled the rest of the range.
  for (int64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i], 1) << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndexInline) {
  // The single-worker inline path must agree with the pooled path: every
  // index runs and the lowest failing index's exception wins.
  ThreadPool pool(1);
  std::vector<int> visits(8, 0);
  try {
    pool.ParallelFor(0, 8, [&](int64_t i) {
      ++visits[static_cast<size_t>(i)];
      if (i == 2 || i == 5) {
        throw std::runtime_error("index " + std::to_string(i));
      }
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 2");
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(visits[static_cast<size_t>(i)], 1);
}

TEST(ThreadPool, ParallelForUsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  pool.ParallelFor(0, 64, [&](int64_t) {
    // Sleeping keeps this task's thread busy while the others drain the
    // queue, so multiple workers are observed even on a single core.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

}  // namespace
}  // namespace tapejuke
