// Unit tests for the admission-control layer: config validation, the
// static-cap ladder, and the adaptive controller's ratchet dynamics
// (immediate shed on violation, comfort-streak hysteresis on recovery).

#include "sim/admission.h"

#include <gtest/gtest.h>

namespace tapejuke {
namespace {

WorkloadConfig OpenMix(int num_classes, double slo0) {
  WorkloadConfig workload;
  workload.model = QueuingModel::kOpen;
  for (int i = 0; i < num_classes; ++i) {
    TenantClassConfig cls;
    cls.weight = 1.0;
    if (i == 0) cls.p99_slo_seconds = slo0;
    workload.tenant_classes.push_back(cls);
  }
  return workload;
}

TEST(AdmissionConfig, DisabledValidatesAgainstAnything) {
  AdmissionConfig admission;
  WorkloadConfig closed;
  closed.model = QueuingModel::kClosed;
  EXPECT_TRUE(admission.Validate(closed).ok());
}

TEST(AdmissionConfig, RejectsClosedModel) {
  AdmissionConfig admission;
  admission.policy = AdmissionPolicy::kStaticCap;
  admission.queue_cap = 10;
  WorkloadConfig closed;
  closed.model = QueuingModel::kClosed;
  EXPECT_FALSE(admission.Validate(closed).ok());
}

TEST(AdmissionConfig, StaticCapNeedsPositiveCap) {
  AdmissionConfig admission;
  admission.policy = AdmissionPolicy::kStaticCap;
  const WorkloadConfig workload = OpenMix(2, 100.0);
  EXPECT_FALSE(admission.Validate(workload).ok());
  admission.queue_cap = 1;
  EXPECT_TRUE(admission.Validate(workload).ok());
}

TEST(AdmissionConfig, AdaptiveNeedsClassesWindowAndSlo) {
  AdmissionConfig admission;
  admission.policy = AdmissionPolicy::kAdaptive;
  EXPECT_TRUE(admission.Validate(OpenMix(2, 100.0)).ok());
  // One class: nothing to shed below the protected class.
  EXPECT_FALSE(admission.Validate(OpenMix(1, 100.0)).ok());
  // No SLO anywhere: the controller would never trigger.
  EXPECT_FALSE(admission.Validate(OpenMix(3, 0.0)).ok());
  admission.window_seconds = 0;
  EXPECT_FALSE(admission.Validate(OpenMix(2, 100.0)).ok());
}

TEST(AdmissionController, NoneAdmitsEverything) {
  const WorkloadConfig workload = OpenMix(2, 100.0);
  AdmissionController controller(AdmissionConfig{},
                                 workload.tenant_classes);
  EXPECT_TRUE(controller.Admit(0, 0.0, 1'000'000));
  EXPECT_TRUE(controller.Admit(1, 0.0, 1'000'000));
}

TEST(AdmissionController, StaticCapLadderSharesByClass) {
  AdmissionConfig admission;
  admission.policy = AdmissionPolicy::kStaticCap;
  admission.queue_cap = 10;
  const WorkloadConfig workload = OpenMix(2, 100.0);
  AdmissionController controller(admission, workload.tenant_classes);
  // Class 0 keeps the whole cap; class 1 only half of it.
  EXPECT_TRUE(controller.Admit(0, 0.0, 9));
  EXPECT_FALSE(controller.Admit(0, 0.0, 10));
  EXPECT_TRUE(controller.Admit(1, 0.0, 4));
  EXPECT_FALSE(controller.Admit(1, 0.0, 5));
}

// Drives the adaptive controller through one shed / recover cycle by hand:
// a healthy completion stream, then a queue explosion (Little's-law
// estimate blows the SLO), then an idle queue that must stay shed until
// the comfort streak completes.
TEST(AdmissionController, AdaptiveShedsAndRecoversWithHysteresis) {
  AdmissionConfig admission;
  admission.policy = AdmissionPolicy::kAdaptive;
  admission.window_seconds = 1000.0;  // evaluates every >= 125 s
  const WorkloadConfig workload = OpenMix(2, 100.0);
  AdmissionController controller(admission, workload.tenant_classes);

  // Establish a completion rate of 0.1/s with 10 s delays (comfortable).
  for (int i = 0; i < 100; ++i) {
    controller.OnCompletion(0, /*delay=*/10.0, /*now=*/i * 10.0);
  }

  // est_wait = 1000 / 0.1 = 10000 s >> SLO 100: shed the best-effort
  // class immediately, keep admitting the protected class.
  EXPECT_FALSE(controller.Admit(1, 1000.0, 1000));
  EXPECT_EQ(controller.shed_level(), 1);
  EXPECT_TRUE(controller.Admit(0, 1000.0, 1000));

  // Queue now empty and the windowed p99 (10 s) is comfortable, but one
  // or two comfortable evaluations must not un-shed.
  EXPECT_FALSE(controller.Admit(1, 1125.0, 0));
  EXPECT_FALSE(controller.Admit(1, 1250.0, 0));
  EXPECT_EQ(controller.shed_level(), 1);
  // Third consecutive comfortable evaluation completes the streak.
  EXPECT_TRUE(controller.Admit(1, 1375.0, 0));
  EXPECT_EQ(controller.shed_level(), 0);
}

TEST(AdmissionController, AdaptiveViolationResetsComfortStreak) {
  AdmissionConfig admission;
  admission.policy = AdmissionPolicy::kAdaptive;
  admission.window_seconds = 1000.0;
  const WorkloadConfig workload = OpenMix(2, 100.0);
  AdmissionController controller(admission, workload.tenant_classes);
  for (int i = 0; i < 100; ++i) {
    controller.OnCompletion(0, 10.0, i * 10.0);
  }
  ASSERT_FALSE(controller.Admit(1, 1000.0, 1000));  // shed
  ASSERT_FALSE(controller.Admit(1, 1125.0, 0));     // comfortable x1
  ASSERT_FALSE(controller.Admit(1, 1250.0, 0));     // comfortable x2
  // A fresh violation lands before the streak completes: the streak must
  // restart from zero, so two more comfortable evaluations stay shed.
  ASSERT_FALSE(controller.Admit(1, 1375.0, 1000));
  EXPECT_EQ(controller.shed_level(), 1);
  EXPECT_FALSE(controller.Admit(1, 1500.0, 0));
  EXPECT_FALSE(controller.Admit(1, 1625.0, 0));
  EXPECT_TRUE(controller.Admit(1, 1750.0, 0));
}

}  // namespace
}  // namespace tapejuke
