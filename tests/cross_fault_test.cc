// Cross-fault interaction tests: permanent media errors co-occurring with
// drive failures and whole-tape loss in the multi-drive simulator, the
// scrub-detects-then-client-reads race under an invariant-checking
// scheduler, and the single-drive-only gate on scrub/repair.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.h"
#include "sched/validating_scheduler.h"
#include "sim/multi_drive.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace tapejuke {
namespace {

SimulationConfig CrossFaultSim(uint64_t seed) {
  SimulationConfig sim;
  sim.duration_seconds = 200'000;
  sim.warmup_seconds = 0;
  sim.workload.model = QueuingModel::kClosed;
  sim.workload.queue_length = 40;
  sim.workload.seed = seed;
  // Every fault class at once: permanent errors (some killing the whole
  // tape, possibly one that is mounted in a drive that later fails),
  // transients, robot slips, and frequent drive failures.
  sim.faults.permanent_media_error_prob = 2e-3;
  sim.faults.whole_tape_fraction = 0.3;
  sim.faults.transient_read_error_prob = 0.01;
  sim.faults.robot_fault_prob = 0.01;
  sim.faults.drive_mtbf_seconds = 15'000;
  sim.faults.drive_mttr_seconds = 2'000;
  return sim;
}

TEST(CrossFault, MultiDriveSurvivesMediaErrorsDuringDriveFailures) {
  // 15k-second MTBF across 3 drives over 200k seconds: dozens of drive
  // failures interleaved with media errors, including whole-tape losses of
  // tapes currently jammed in a failed drive. Conservation and forward
  // progress must hold through all of it, across seeds.
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    JukeboxConfig jukebox_config;
    Jukebox jukebox(jukebox_config);
    LayoutSpec layout;
    layout.num_replicas = 2;
    layout.start_position = 1.0;
    Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();
    MultiDriveConfig drives;
    drives.num_drives = 3;

    MultiDriveSimulator simulator(&jukebox, &catalog, drives,
                                  CrossFaultSim(seed));
    const SimulationResult result = simulator.Run();
    ASSERT_TRUE(result.fault_injection) << "seed " << seed;
    EXPECT_EQ(result.completed_total + result.failed_requests +
                  result.outstanding_at_end,
              result.issued_requests)
        << "seed " << seed;
    EXPECT_GT(result.completed_total, 0) << "seed " << seed;
    EXPECT_GT(result.faults.drive_failures, 0) << "seed " << seed;
    EXPECT_GT(result.faults.permanent_media_errors, 0) << "seed " << seed;
    EXPECT_GT(result.faults.failovers, 0) << "seed " << seed;
    EXPECT_EQ(result.faults.replicas_masked, catalog.dead_replicas())
        << "seed " << seed;
    EXPECT_LE(result.live_replica_fraction, 1.0) << "seed " << seed;
  }
}

TEST(CrossFault, ScrubClientRaceHoldsSchedulerInvariants) {
  // Scrub masks replicas dead between client arrivals and their service;
  // queued requests for scrub-killed blocks must be evicted or failed
  // over, never served from a dead replica. ValidatingScheduler TJ_CHECKs
  // replica placement and sweep order on every pop, and its conservation
  // counters must balance at the end.
  JukeboxConfig jukebox_config;
  Jukebox jukebox(jukebox_config);
  LayoutSpec layout;
  layout.num_replicas = 2;
  layout.start_position = 1.0;
  const Jukebox probe(jukebox_config);
  layout.logical_blocks_override =
      LayoutBuilder::MaxLogicalBlocks(probe, layout) * 9 / 10;
  Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();

  ValidatingScheduler scheduler(
      CreateScheduler(AlgorithmSpec::Parse("dynamic-max-bandwidth").value(),
                      &jukebox, &catalog),
      &jukebox, &catalog);

  SimulationConfig sim;
  sim.duration_seconds = 400'000;
  sim.warmup_seconds = 0;
  sim.workload.model = QueuingModel::kOpen;
  sim.workload.mean_interarrival_seconds = 240;
  sim.workload.seed = 17;
  sim.faults.permanent_media_error_prob = 5e-3;
  sim.faults.transient_read_error_prob = 0.01;
  sim.repair.enable_repair = true;
  sim.repair.scrub_interval_seconds = 40'000;
  sim.repair.repair_bandwidth_mb_per_s = 20;

  Simulator simulator(&jukebox, &catalog, &scheduler, sim);
  const SimulationResult result = simulator.Run();
  ASSERT_TRUE(result.repair_enabled);
  EXPECT_GT(result.repair.scrub_blocks_read, 0);
  EXPECT_EQ(result.completed_total + result.failed_requests +
                result.outstanding_at_end,
            result.issued_requests);
  EXPECT_GT(scheduler.requests_served(), 0);
  // Whatever is still inside the scheduler at cutoff is the queued client
  // work plus any unfinished background source reads.
  EXPECT_GE(scheduler.outstanding(), result.outstanding_at_end);
}

TEST(CrossFaultDeathTest, MultiDriveRejectsScrubAndRepair) {
  JukeboxConfig jukebox_config;
  Jukebox jukebox(jukebox_config);
  LayoutSpec layout;
  layout.num_replicas = 1;
  Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();
  SimulationConfig sim = CrossFaultSim(1);
  sim.repair.enable_repair = true;
  EXPECT_DEATH(
      MultiDriveSimulator(&jukebox, &catalog, MultiDriveConfig{}, sim),
      "single-drive");
}

}  // namespace
}  // namespace tapejuke
