// Unit tests for the metrics collector.

#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace tapejuke {
namespace {

TEST(Metrics, ThroughputAndDelay) {
  MetricsCollector metrics(/*warmup_seconds=*/0, /*block_size_mb=*/16);
  metrics.MarkWarmupBoundary(JukeboxCounters{});
  metrics.OnArrival(0.0);
  metrics.OnArrival(0.0);
  metrics.OnCompletion(0.0, 100.0);
  metrics.OnCompletion(0.0, 200.0);
  const SimulationResult result =
      metrics.Finalize(200.0, JukeboxCounters{});
  EXPECT_EQ(result.completed_requests, 2);
  EXPECT_DOUBLE_EQ(result.throughput_mb_per_s, 32.0 / 200.0);
  EXPECT_DOUBLE_EQ(result.throughput_kb_per_s, 32.0 * 1024 / 200.0);
  EXPECT_DOUBLE_EQ(result.requests_per_minute, 2.0 / (200.0 / 60.0));
  EXPECT_DOUBLE_EQ(result.mean_delay_seconds, 150.0);
  EXPECT_DOUBLE_EQ(result.max_delay_seconds, 200.0);
}

TEST(Metrics, WarmupExcludesEarlyCompletions) {
  MetricsCollector metrics(/*warmup_seconds=*/100, 16);
  metrics.OnArrival(0.0);
  metrics.OnCompletion(0.0, 50.0);  // inside warm-up: ignored
  metrics.MarkWarmupBoundary(JukeboxCounters{});
  metrics.OnArrival(90.0);
  metrics.OnCompletion(90.0, 150.0);  // counted
  const SimulationResult result =
      metrics.Finalize(200.0, JukeboxCounters{});
  EXPECT_EQ(result.completed_requests, 1);
  EXPECT_DOUBLE_EQ(result.measured_seconds, 100.0);
  EXPECT_DOUBLE_EQ(result.mean_delay_seconds, 60.0);
}

TEST(Metrics, CounterDeltasAgainstWarmupSnapshot) {
  MetricsCollector metrics(/*warmup_seconds=*/10, 16);
  JukeboxCounters at_warmup;
  at_warmup.tape_switches = 5;
  at_warmup.read_seconds = 100;
  at_warmup.locate_seconds = 50;
  metrics.MarkWarmupBoundary(at_warmup);
  JukeboxCounters final_counters;
  final_counters.tape_switches = 15;
  final_counters.read_seconds = 300;
  final_counters.locate_seconds = 150;
  const SimulationResult result = metrics.Finalize(3610.0, final_counters);
  EXPECT_EQ(result.counters.tape_switches, 10);
  EXPECT_DOUBLE_EQ(result.counters.read_seconds, 200.0);
  EXPECT_DOUBLE_EQ(result.tape_switches_per_hour, 10.0);
  EXPECT_DOUBLE_EQ(result.transfer_utilization, 200.0 / 300.0);
}

TEST(Metrics, CompletionExactlyAtWarmupBoundaryIsExcluded) {
  MetricsCollector metrics(/*warmup_seconds=*/100, 16);
  metrics.OnArrival(0.0);
  metrics.OnArrival(0.0);
  metrics.OnCompletion(0.0, 100.0);  // now == warm-up: still warm-up
  metrics.MarkWarmupBoundary(JukeboxCounters{});
  metrics.OnCompletion(0.0, 100.0 + 1e-6);  // just past: counted
  const SimulationResult result =
      metrics.Finalize(200.0, JukeboxCounters{});
  EXPECT_EQ(result.completed_requests, 1);
}

TEST(Metrics, ZeroDelayCompletionCounts) {
  MetricsCollector metrics(/*warmup_seconds=*/0, 16);
  metrics.MarkWarmupBoundary(JukeboxCounters{});
  metrics.OnArrival(50.0);
  metrics.OnCompletion(50.0, 50.0);  // arrival == completion
  const SimulationResult result =
      metrics.Finalize(100.0, JukeboxCounters{});
  EXPECT_EQ(result.completed_requests, 1);
  EXPECT_DOUBLE_EQ(result.mean_delay_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.max_delay_seconds, 0.0);
}

TEST(Metrics, OutstandingAreaClipsAtWarmupBoundary) {
  MetricsCollector metrics(/*warmup_seconds=*/100, 16);
  metrics.OnArrival(0.0);  // outstanding during warm-up: not measured
  metrics.MarkWarmupBoundary(JukeboxCounters{});
  metrics.OnCompletion(0.0, 150.0);  // 1 outstanding over [100, 150)
  const SimulationResult result =
      metrics.Finalize(200.0, JukeboxCounters{});
  // (1*50 + 0*50) / 100 measured seconds.
  EXPECT_DOUBLE_EQ(result.mean_outstanding, 0.5);
}

TEST(Metrics, UnmarkedWarmupDeltasAgainstZeroBaseline) {
  MetricsCollector metrics(/*warmup_seconds=*/0, 16);
  JukeboxCounters final_counters;
  final_counters.tape_switches = 4;
  final_counters.read_seconds = 30.0;
  final_counters.locate_seconds = 10.0;
  const SimulationResult result = metrics.Finalize(3600.0, final_counters);
  // Without MarkWarmupBoundary the baseline snapshot stays all-zero, so
  // the deltas are the final counters themselves.
  EXPECT_EQ(result.counters.tape_switches, 4);
  EXPECT_DOUBLE_EQ(result.tape_switches_per_hour, 4.0);
  EXPECT_DOUBLE_EQ(result.transfer_utilization, 30.0 / 40.0);
}

TEST(Metrics, MeanOutstandingIsTimeAverage) {
  MetricsCollector metrics(/*warmup_seconds=*/0, 16);
  metrics.MarkWarmupBoundary(JukeboxCounters{});
  metrics.OnArrival(0.0);           // 1 outstanding over [0, 50)
  metrics.OnArrival(50.0);          // 2 outstanding over [50, 100)
  metrics.OnCompletion(0.0, 100.0);  // 1 outstanding over [100, 200)
  metrics.OnCompletion(50.0, 200.0);
  const SimulationResult result =
      metrics.Finalize(200.0, JukeboxCounters{});
  // (1*50 + 2*50 + 1*100) / 200 = 1.25
  EXPECT_DOUBLE_EQ(result.mean_outstanding, 1.25);
}

TEST(Metrics, PercentilesFromHistogram) {
  MetricsCollector metrics(0, 16);
  metrics.MarkWarmupBoundary(JukeboxCounters{});
  for (int i = 1; i <= 100; ++i) {
    metrics.OnArrival(0.0);
    metrics.OnCompletion(0.0, static_cast<double>(i * 10));
  }
  const SimulationResult result =
      metrics.Finalize(1000.0, JukeboxCounters{});
  EXPECT_NEAR(result.p50_delay_seconds, 500.0, 20.0);
  EXPECT_NEAR(result.p95_delay_seconds, 950.0, 20.0);
}

TEST(Metrics, DelayTailBeyondHistogramRangeReportsTrueMax) {
  // Delays past the histogram range (200000 s) used to fold into the top
  // bucket, so p99 silently saturated at ~55 h. The overflow mass must be
  // reported and quantiles landing in it must return the tracked maximum.
  MetricsCollector metrics(/*warmup_seconds=*/0, 16);
  metrics.MarkWarmupBoundary(JukeboxCounters{});
  for (int i = 0; i < 90; ++i) {
    metrics.OnArrival(0.0);
    metrics.OnCompletion(0.0, 100.0);
  }
  for (int i = 0; i < 10; ++i) {
    metrics.OnArrival(0.0);
    metrics.OnCompletion(0.0, 900000.0);  // ~10 days, beyond the range
  }
  const SimulationResult result =
      metrics.Finalize(900000.0, JukeboxCounters{});
  EXPECT_EQ(result.delay_hist_overflow, 10);
  EXPECT_DOUBLE_EQ(result.max_delay_seconds, 900000.0);
  EXPECT_DOUBLE_EQ(result.p99_delay_seconds, 900000.0);
  // p50 still resolves inside the histogram.
  EXPECT_LT(result.p50_delay_seconds, 200.0);
}

TEST(Metrics, MergeMatchesOneCollectorSeeingEverything) {
  // Two boxes' collectors merged must agree with one collector that saw
  // every event — including the outstanding-area integral once each box's
  // area is closed at the common end time via AccumulateTo.
  constexpr double kWarmup = 100.0;
  MetricsCollector a(kWarmup, 16);
  MetricsCollector b(kWarmup, 16);
  MetricsCollector whole(kWarmup, 16);
  a.MarkWarmupBoundary(JukeboxCounters{});
  b.MarkWarmupBoundary(JukeboxCounters{});
  whole.MarkWarmupBoundary(JukeboxCounters{});
  // Box a: one request outstanding across the warm-up boundary. Box b:
  // one normal completion, one failure, one still outstanding at the end.
  // The reference collector sees the same events in global time order
  // (collectors require monotone event times).
  a.OnArrival(50.0);
  whole.OnArrival(50.0);
  b.OnArrival(150.0);
  whole.OnArrival(150.0);
  a.OnCompletion(50.0, 300.0);
  whole.OnCompletion(50.0, 300.0);
  b.OnCompletion(150.0, 400.0);
  whole.OnCompletion(150.0, 400.0);
  b.OnArrival(450.0);
  whole.OnArrival(450.0);
  b.OnFailure(450.0, 500.0);
  whole.OnFailure(450.0, 500.0);
  b.OnArrival(550.0);
  whole.OnArrival(550.0);

  const double end = 600.0;
  a.AccumulateTo(end);
  b.AccumulateTo(end);
  whole.AccumulateTo(end);
  a.Merge(b);
  const SimulationResult merged = a.Finalize(end, JukeboxCounters{});
  const SimulationResult single = whole.Finalize(end, JukeboxCounters{});
  EXPECT_EQ(merged.completed_requests, single.completed_requests);
  EXPECT_EQ(merged.issued_requests, single.issued_requests);
  EXPECT_EQ(merged.failed_requests, single.failed_requests);
  EXPECT_EQ(merged.outstanding_at_end, single.outstanding_at_end);
  EXPECT_DOUBLE_EQ(merged.mean_delay_seconds, single.mean_delay_seconds);
  EXPECT_DOUBLE_EQ(merged.max_delay_seconds, single.max_delay_seconds);
  EXPECT_DOUBLE_EQ(merged.mean_outstanding, single.mean_outstanding);
  EXPECT_DOUBLE_EQ(merged.p95_delay_seconds, single.p95_delay_seconds);
}

TEST(Metrics, EmptyRunIsAllZero) {
  MetricsCollector metrics(0, 16);
  const SimulationResult result = metrics.Finalize(0.0, JukeboxCounters{});
  EXPECT_EQ(result.completed_requests, 0);
  EXPECT_DOUBLE_EQ(result.throughput_mb_per_s, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_delay_seconds, 0.0);
}

}  // namespace
}  // namespace tapejuke
