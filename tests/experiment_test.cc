// Tests for the core experiment API: algorithm parsing, the factory, the
// runner, parametric curves, and the cost-performance analysis.

#include "core/experiment.h"

#include <gtest/gtest.h>

#include "core/cost_performance.h"

namespace tapejuke {
namespace {

TEST(AlgorithmSpec, ParseRoundTrips) {
  const struct {
    const char* input;
    AlgorithmKind kind;
    TapePolicy policy;
    const char* name;
  } cases[] = {
      {"fifo", AlgorithmKind::kFifo, TapePolicy::kRoundRobin, "fifo"},
      {"static-round-robin", AlgorithmKind::kStatic,
       TapePolicy::kRoundRobin, "static round-robin"},
      {"static-oldest-max-requests", AlgorithmKind::kStatic,
       TapePolicy::kOldestMaxRequests, "static oldest-max-requests"},
      {"dynamic-max-bandwidth", AlgorithmKind::kDynamic,
       TapePolicy::kMaxBandwidth, "dynamic max-bandwidth"},
      {"envelope-max-requests", AlgorithmKind::kEnvelope,
       TapePolicy::kMaxRequests, "max-requests envelope"},
      {"envelope-oldest-max-bandwidth", AlgorithmKind::kEnvelope,
       TapePolicy::kOldestMaxBandwidth, "oldest-max-bandwidth envelope"},
  };
  for (const auto& c : cases) {
    const StatusOr<AlgorithmSpec> spec = AlgorithmSpec::Parse(c.input);
    ASSERT_TRUE(spec.ok()) << c.input;
    EXPECT_EQ(spec->kind, c.kind) << c.input;
    if (spec->kind != AlgorithmKind::kFifo) {
      EXPECT_EQ(spec->policy, c.policy) << c.input;
    }
    EXPECT_EQ(spec->Name(), c.name);
  }
}

TEST(AlgorithmSpec, ParseRejectsUnknown) {
  EXPECT_FALSE(AlgorithmSpec::Parse("lifo").ok());
  EXPECT_FALSE(AlgorithmSpec::Parse("dynamic-bogus").ok());
  EXPECT_FALSE(AlgorithmSpec::Parse("bogus-max-requests").ok());
  EXPECT_FALSE(AlgorithmSpec::Parse("").ok());
}

TEST(AlgorithmSpec, AllPaperAlgorithmsCount) {
  // FIFO + 5 static + 5 dynamic + 3 envelope = 14.
  const auto all = AlgorithmSpec::AllPaperAlgorithms();
  EXPECT_EQ(all.size(), 14u);
}

TEST(CreateScheduler, ProducesMatchingNames) {
  JukeboxConfig jb;
  jb.num_tapes = 2;
  Jukebox jukebox(jb);
  LayoutSpec layout;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();
  for (const AlgorithmSpec& spec : AlgorithmSpec::AllPaperAlgorithms()) {
    if (spec.kind == AlgorithmKind::kFifo) continue;
    const auto scheduler = CreateScheduler(spec, &jukebox, &catalog);
    EXPECT_EQ(scheduler->name(), spec.Name());
  }
}

ExperimentConfig QuickConfig() {
  ExperimentConfig config;
  config.sim.duration_seconds = 120'000;
  config.sim.warmup_seconds = 12'000;
  config.sim.workload.queue_length = 30;
  config.sim.workload.seed = 23;
  config.algorithm = AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
  return config;
}

TEST(ExperimentRunner, RunsEndToEnd) {
  const StatusOr<ExperimentResult> result =
      ExperimentRunner::Run(QuickConfig());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->sim.completed_requests, 50);
  EXPECT_EQ(result->layout.logical_blocks, 4480);
  EXPECT_EQ(result->algorithm_name, "dynamic max-bandwidth");
}

TEST(ExperimentRunner, InvalidConfigFails) {
  ExperimentConfig config = QuickConfig();
  config.layout.hot_fraction = 2.0;
  EXPECT_FALSE(ExperimentRunner::Run(config).ok());
  config = QuickConfig();
  config.sim.duration_seconds = -1;
  EXPECT_FALSE(ExperimentRunner::Run(config).ok());
}

TEST(ExperimentRunner, IsDeterministic) {
  const ExperimentResult a = ExperimentRunner::Run(QuickConfig()).value();
  const ExperimentResult b = ExperimentRunner::Run(QuickConfig()).value();
  EXPECT_DOUBLE_EQ(a.sim.throughput_mb_per_s, b.sim.throughput_mb_per_s);
  EXPECT_DOUBLE_EQ(a.sim.mean_delay_seconds, b.sim.mean_delay_seconds);
}

TEST(ThroughputDelayCurve, MoreLoadMoreThroughputAndDelay) {
  const auto curve =
      ThroughputDelayCurve(QuickConfig(), {20, 80}).value();
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_GT(curve[1].throughput_req_per_min,
            curve[0].throughput_req_per_min);
  EXPECT_GT(curve[1].mean_delay_minutes, curve[0].mean_delay_minutes);
}

TEST(OpenThroughputDelayCurve, ThroughputTracksArrivalRate) {
  const auto curve =
      OpenThroughputDelayCurve(QuickConfig(), {600.0, 300.0}).value();
  ASSERT_EQ(curve.size(), 2u);
  // Light load: throughput ~ 60/interarrival requests per minute.
  EXPECT_NEAR(curve[0].throughput_req_per_min, 0.1, 0.04);
  EXPECT_NEAR(curve[1].throughput_req_per_min, 0.2, 0.05);
}

TEST(DefaultSimSeconds, EnvOverride) {
  unsetenv("TAPEJUKE_SIM_SECONDS");
  EXPECT_DOUBLE_EQ(DefaultSimSeconds(), 2'000'000.0);
  setenv("TAPEJUKE_SIM_SECONDS", "500000", 1);
  EXPECT_DOUBLE_EQ(DefaultSimSeconds(), 500'000.0);
  setenv("TAPEJUKE_SIM_SECONDS", "garbage", 1);
  EXPECT_DOUBLE_EQ(DefaultSimSeconds(), 2'000'000.0);
  unsetenv("TAPEJUKE_SIM_SECONDS");
}

TEST(CostPerformanceCurve, BaselineRatioIsOne) {
  ExperimentConfig config = QuickConfig();
  config.algorithm = AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  const auto curve =
      CostPerformanceCurve(config, /*base_queue=*/30, {0, 9}).value();
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].cost_performance_ratio, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].expansion_factor, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].expansion_factor, 1.9);
  EXPECT_EQ(curve[1].effective_queue, 16);  // round(30 / 1.9)
  EXPECT_GT(curve[1].cost_performance_ratio, 0.5);
  EXPECT_LT(curve[1].cost_performance_ratio, 1.5);
}

}  // namespace
}  // namespace tapejuke
