// Unit tests for the FIFO, static, and dynamic greedy schedulers.

#include "sched/greedy_scheduler.h"

#include <gtest/gtest.h>

#include "sched/fifo_scheduler.h"
#include "test_util.h"

namespace tapejuke {
namespace {

Request Req(RequestId id, BlockId block) {
  return Request{id, block, static_cast<double>(id)};
}

class GreedySchedulerTest : public ::testing::Test {
 protected:
  // Two tapes x 10 slots. Tape 0: blocks 0..3 at slots 0..3.
  // Tape 1: blocks 4..5 at slots 0..1. Block 6 on both tapes (replicated).
  GreedySchedulerTest() : rig_(2) {
    rig_.Place(0, 0, 0);
    rig_.Place(1, 0, 1);
    rig_.Place(2, 0, 2);
    rig_.Place(3, 0, 3);
    rig_.Place(4, 1, 0);
    rig_.Place(5, 1, 1);
    rig_.Place(6, 0, 8);
    rig_.Place(6, 1, 8);
    catalog_ = rig_.BuildCatalog(/*num_hot=*/0);
  }

  TinyRig rig_;
  std::optional<Catalog> catalog_;
};

TEST_F(GreedySchedulerTest, StaticExtractsAllRequestsForChosenTape) {
  GreedyScheduler sched(&rig_.jukebox(), &*catalog_,
                        TapePolicy::kMaxRequests, /*dynamic=*/false);
  sched.OnArrival(Req(1, 4), 0);
  sched.OnArrival(Req(2, 0), 0);
  sched.OnArrival(Req(3, 2), 0);
  sched.OnArrival(Req(4, 1), 0);
  EXPECT_EQ(sched.pending_size(), 4u);
  const TapeId tape = sched.MajorReschedule();
  EXPECT_EQ(tape, 0);  // three requests on tape 0 vs one on tape 1
  EXPECT_EQ(sched.sweep_size(), 3u);
  EXPECT_EQ(sched.pending_size(), 1u);  // block 4 deferred
  // Sweep sorted by position ascending.
  EXPECT_EQ(sched.PopNext()->position, 0);
  EXPECT_EQ(sched.PopNext()->position, 16);
  EXPECT_EQ(sched.PopNext()->position, 32);
}

TEST_F(GreedySchedulerTest, StaticDefersArrivalsEvenForMountedTape) {
  GreedyScheduler sched(&rig_.jukebox(), &*catalog_,
                        TapePolicy::kMaxRequests, /*dynamic=*/false);
  sched.OnArrival(Req(1, 0), 0);
  rig_.jukebox().SwitchTo(sched.MajorReschedule());
  EXPECT_EQ(sched.sweep_size(), 1u);
  // New request for the mounted tape, ahead of the head: still deferred.
  sched.OnArrival(Req(2, 3), 0);
  EXPECT_EQ(sched.sweep_size(), 1u);
  EXPECT_EQ(sched.pending_size(), 1u);
}

TEST_F(GreedySchedulerTest, DynamicInsertsAheadOnMountedTape) {
  GreedyScheduler sched(&rig_.jukebox(), &*catalog_,
                        TapePolicy::kMaxRequests, /*dynamic=*/true);
  sched.OnArrival(Req(1, 0), 0);
  sched.OnArrival(Req(2, 2), 0);
  rig_.jukebox().SwitchTo(sched.MajorReschedule());
  EXPECT_EQ(sched.sweep_size(), 2u);
  // Block 1 (slot 1, position 16) is ahead of head 0: inserted on the fly.
  sched.OnArrival(Req(3, 1), /*committed_head=*/0);
  EXPECT_EQ(sched.sweep_size(), 3u);
  EXPECT_EQ(sched.pending_size(), 0u);
  EXPECT_EQ(sched.PopNext()->position, 0);
  EXPECT_EQ(sched.PopNext()->position, 16);
  EXPECT_EQ(sched.PopNext()->position, 32);
}

TEST_F(GreedySchedulerTest, DynamicDefersOtherTapeArrivals) {
  GreedyScheduler sched(&rig_.jukebox(), &*catalog_,
                        TapePolicy::kMaxRequests, /*dynamic=*/true);
  sched.OnArrival(Req(1, 0), 0);
  rig_.jukebox().SwitchTo(sched.MajorReschedule());
  sched.OnArrival(Req(2, 4), 0);  // tape 1 only
  EXPECT_EQ(sched.sweep_size(), 1u);
  EXPECT_EQ(sched.pending_size(), 1u);
}

TEST_F(GreedySchedulerTest, DynamicBehindHeadUsesReversePhase) {
  GreedyScheduler sched(&rig_.jukebox(), &*catalog_,
                        TapePolicy::kMaxRequests, /*dynamic=*/true);
  sched.OnArrival(Req(1, 3), 0);  // slot 3, position 48
  rig_.jukebox().SwitchTo(sched.MajorReschedule());
  // Committed head is 64 (past block 0 at position 0): goes to the
  // reverse phase by default.
  sched.OnArrival(Req(2, 0), /*committed_head=*/64);
  EXPECT_EQ(sched.sweep_size(), 2u);
  EXPECT_EQ(sched.PopNext()->position, 48);
  EXPECT_EQ(sched.PopNext()->position, 0);
}

TEST_F(GreedySchedulerTest, ReversePhaseAblationDefersInstead) {
  SchedulerOptions options;
  options.allow_reverse_phase = false;
  GreedyScheduler sched(&rig_.jukebox(), &*catalog_,
                        TapePolicy::kMaxRequests, /*dynamic=*/true, options);
  sched.OnArrival(Req(1, 3), 0);
  rig_.jukebox().SwitchTo(sched.MajorReschedule());
  sched.OnArrival(Req(2, 0), /*committed_head=*/64);
  EXPECT_EQ(sched.sweep_size(), 1u);
  EXPECT_EQ(sched.pending_size(), 1u);
}

TEST_F(GreedySchedulerTest, DuplicateBlockRequestsShareOneRead) {
  GreedyScheduler sched(&rig_.jukebox(), &*catalog_,
                        TapePolicy::kMaxRequests, /*dynamic=*/false);
  sched.OnArrival(Req(1, 2), 0);
  sched.OnArrival(Req(2, 2), 0);
  sched.MajorReschedule();
  ASSERT_EQ(sched.sweep_size(), 1u);
  EXPECT_EQ(sched.PopNext()->requests.size(), 2u);
}

TEST_F(GreedySchedulerTest, ReplicatedBlockServedFromChosenTape) {
  GreedyScheduler sched(&rig_.jukebox(), &*catalog_,
                        TapePolicy::kMaxRequests, /*dynamic=*/false);
  sched.OnArrival(Req(1, 6), 0);  // replicated on both tapes
  sched.OnArrival(Req(2, 4), 0);  // tape 1
  const TapeId tape = sched.MajorReschedule();
  EXPECT_EQ(tape, 1);  // tape 1 satisfies both requests
  EXPECT_EQ(sched.sweep_size(), 2u);
  EXPECT_EQ(sched.pending_size(), 0u);
}

TEST_F(GreedySchedulerTest, Names) {
  EXPECT_EQ(GreedyScheduler(&rig_.jukebox(), &*catalog_,
                            TapePolicy::kMaxBandwidth, false)
                .name(),
            "static max-bandwidth");
  EXPECT_EQ(GreedyScheduler(&rig_.jukebox(), &*catalog_,
                            TapePolicy::kRoundRobin, true)
                .name(),
            "dynamic round-robin");
}

TEST_F(GreedySchedulerTest, FifoServesInArrivalOrder) {
  FifoScheduler sched(&rig_.jukebox(), &*catalog_);
  sched.OnArrival(Req(1, 3), 0);
  sched.OnArrival(Req(2, 4), 0);
  sched.OnArrival(Req(3, 0), 0);
  EXPECT_EQ(sched.name(), "fifo");

  EXPECT_EQ(sched.MajorReschedule(), 0);
  EXPECT_EQ(sched.sweep_size(), 1u);
  EXPECT_EQ(sched.PopNext()->block, 3);

  EXPECT_EQ(sched.MajorReschedule(), 1);
  EXPECT_EQ(sched.PopNext()->block, 4);

  EXPECT_EQ(sched.MajorReschedule(), 0);
  EXPECT_EQ(sched.PopNext()->block, 0);
  EXPECT_FALSE(sched.HasWork());
}

TEST_F(GreedySchedulerTest, FifoPrefersMountedReplicaForReplicatedBlock) {
  FifoScheduler sched(&rig_.jukebox(), &*catalog_);
  rig_.jukebox().SwitchTo(1);
  sched.OnArrival(Req(1, 6), 0);
  EXPECT_EQ(sched.MajorReschedule(), 1);
}

TEST_F(GreedySchedulerTest, FifoAbsorbsDuplicateBlockRequests) {
  FifoScheduler sched(&rig_.jukebox(), &*catalog_);
  sched.OnArrival(Req(1, 2), 0);
  sched.OnArrival(Req(2, 0), 0);
  sched.OnArrival(Req(3, 2), 0);
  sched.MajorReschedule();
  const ServiceEntry entry = *sched.PopNext();
  EXPECT_EQ(entry.block, 2);
  EXPECT_EQ(entry.requests.size(), 2u);  // requests 1 and 3
  EXPECT_EQ(sched.pending_size(), 1u);
}

}  // namespace
}  // namespace tapejuke
