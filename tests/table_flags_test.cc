// Unit tests for the table renderer and the flag parser.

#include <gtest/gtest.h>

#include <sstream>

#include "util/flags.h"
#include "util/table.h"

namespace tapejuke {
namespace {

TEST(Table, TextAlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({std::string("alpha"), int64_t{1}});
  t.AddRow({std::string("b"), int64_t{22}});
  std::ostringstream out;
  t.PrintText(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, DoublePrecision) {
  Table t({"x"});
  t.set_precision(2);
  t.AddRow({3.14159});
  std::ostringstream out;
  t.PrintCsv(out);
  EXPECT_EQ(out.str(), "x\n3.14\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a,b", "c"});
  t.AddRow({std::string("x\"y"), std::string("plain")});
  std::ostringstream out;
  t.PrintCsv(out);
  EXPECT_EQ(out.str(), "\"a,b\",c\n\"x\"\"y\",plain\n");
}

TEST(Table, NumRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({int64_t{1}});
  EXPECT_EQ(t.num_rows(), 1u);
}

class FlagsTest : public ::testing::Test {
 protected:
  Status Parse(std::vector<std::string> args) {
    argv_storage_ = std::move(args);
    argv_storage_.insert(argv_storage_.begin(), "prog");
    std::vector<char*> argv;
    for (auto& arg : argv_storage_) argv.push_back(arg.data());
    return flags_.Parse(static_cast<int>(argv.size()), argv.data());
  }

  FlagSet flags_{"test program"};
  std::vector<std::string> argv_storage_;
};

TEST_F(FlagsTest, ParsesAllTypes) {
  int64_t n = 1;
  double x = 0.5;
  std::string s = "default";
  bool b = false;
  flags_.AddInt64("n", &n, "an int");
  flags_.AddDouble("x", &x, "a double");
  flags_.AddString("s", &s, "a string");
  flags_.AddBool("b", &b, "a bool");
  ASSERT_TRUE(Parse({"--n=42", "--x", "2.5", "--s=hello", "--b"}).ok());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
}

TEST_F(FlagsTest, NoPrefixDisablesBool) {
  bool b = true;
  flags_.AddBool("verbose", &b, "x");
  ASSERT_TRUE(Parse({"--no-verbose"}).ok());
  EXPECT_FALSE(b);
}

TEST_F(FlagsTest, UnknownFlagFails) {
  EXPECT_FALSE(Parse({"--bogus=1"}).ok());
}

TEST_F(FlagsTest, BadIntFails) {
  int64_t n = 0;
  flags_.AddInt64("n", &n, "x");
  EXPECT_FALSE(Parse({"--n=abc"}).ok());
}

TEST_F(FlagsTest, PositionalCollected) {
  ASSERT_TRUE(Parse({"file1", "file2"}).ok());
  EXPECT_EQ(flags_.positional().size(), 2u);
  EXPECT_EQ(flags_.positional()[0], "file1");
}

TEST_F(FlagsTest, MissingValueFails) {
  int64_t n = 0;
  flags_.AddInt64("n", &n, "x");
  EXPECT_FALSE(Parse({"--n"}).ok());
}

TEST_F(FlagsTest, HelpReturnsNotFound) {
  testing::internal::CaptureStdout();
  const Status s = Parse({"--help"});
  testing::internal::GetCapturedStdout();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tapejuke
