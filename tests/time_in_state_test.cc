// Time-in-state accounting: unit tests for the charging primitive and
// the per-drive identity sum(states) == measured_seconds across
// schedulers, queuing models, fault injection, and the multi-drive farm.

#include "obs/time_in_state.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <tuple>

#include "layout/placement.h"
#include "sched/envelope_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "sched/greedy_scheduler.h"
#include "sim/multi_drive.h"
#include "sim/simulator.h"

namespace tapejuke {
namespace {

TEST(TimeInStateAccounting, ChargesIntervalsAndTracksCursor) {
  obs::TimeInStateAccounting accounting(/*num_drives=*/1, /*warmup_end=*/0);
  accounting.ChargeTo(0, obs::DriveActivity::kLocating, 10.0);
  accounting.ChargeTo(0, obs::DriveActivity::kReading, 25.0);
  // A charge at or before the cursor is a no-op.
  accounting.ChargeTo(0, obs::DriveActivity::kIdle, 25.0);
  accounting.ChargeTo(0, obs::DriveActivity::kIdle, 20.0);
  accounting.FinishAt(30.0);
  const obs::DriveTimeInState& tis = accounting.per_drive()[0];
  EXPECT_DOUBLE_EQ(tis[obs::DriveActivity::kLocating], 10.0);
  EXPECT_DOUBLE_EQ(tis[obs::DriveActivity::kReading], 15.0);
  EXPECT_DOUBLE_EQ(tis[obs::DriveActivity::kIdle], 5.0);
  EXPECT_DOUBLE_EQ(tis.Total(), 30.0);
  EXPECT_DOUBLE_EQ(tis.BusySeconds(), 25.0);
  EXPECT_DOUBLE_EQ(accounting.cursor(0), 30.0);
}

TEST(TimeInStateAccounting, ClipsAtWarmupBoundary) {
  obs::TimeInStateAccounting accounting(/*num_drives=*/1,
                                        /*warmup_end=*/100.0);
  // Entirely inside warm-up: excluded.
  accounting.ChargeTo(0, obs::DriveActivity::kReading, 60.0);
  // Straddles the boundary: only the post-warm-up part counts.
  accounting.ChargeTo(0, obs::DriveActivity::kLocating, 130.0);
  accounting.FinishAt(150.0);
  const obs::DriveTimeInState& tis = accounting.per_drive()[0];
  EXPECT_DOUBLE_EQ(tis[obs::DriveActivity::kReading], 0.0);
  EXPECT_DOUBLE_EQ(tis[obs::DriveActivity::kLocating], 30.0);
  EXPECT_DOUBLE_EQ(tis[obs::DriveActivity::kIdle], 20.0);
  EXPECT_DOUBLE_EQ(tis.Total(), 50.0);
}

TEST(TimeInStateAccounting, DownTimeIsNotBusy) {
  obs::TimeInStateAccounting accounting(/*num_drives=*/2, /*warmup_end=*/0);
  accounting.ChargeTo(0, obs::DriveActivity::kDown, 40.0);
  accounting.ChargeTo(1, obs::DriveActivity::kBackground, 40.0);
  accounting.FinishAt(40.0);
  EXPECT_DOUBLE_EQ(accounting.per_drive()[0].BusySeconds(), 0.0);
  EXPECT_DOUBLE_EQ(accounting.per_drive()[1].BusySeconds(), 40.0);
}

TEST(DriveActivity, NamesAreStable) {
  EXPECT_STREQ(obs::DriveActivityName(obs::DriveActivity::kIdle), "idle");
  EXPECT_STREQ(obs::DriveActivityName(obs::DriveActivity::kRobot), "robot");
  EXPECT_STREQ(obs::DriveActivityName(obs::DriveActivity::kDown), "down");
}

// --- identity across the simulators -----------------------------------

struct Rig {
  Rig(const JukeboxConfig& jb_config, const LayoutSpec& layout)
      : jukebox(jb_config),
        catalog(LayoutBuilder::Build(&jukebox, layout).value()) {}

  Jukebox jukebox;
  Catalog catalog;
};

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;
  return config;
}

SimulationConfig ShortSim(QueuingModel model) {
  SimulationConfig config;
  config.duration_seconds = 150'000;
  config.warmup_seconds = 15'000;
  config.workload.model = model;
  config.workload.queue_length = 30;
  config.workload.mean_interarrival_seconds = 120;
  config.workload.seed = 23;
  return config;
}

void ExpectIdentity(const SimulationResult& result, int num_drives) {
  ASSERT_EQ(result.time_in_state.size(),
            static_cast<size_t>(num_drives));
  const double tolerance =
      1e-6 * std::max(1.0, result.measured_seconds);
  for (const obs::DriveTimeInState& tis : result.time_in_state) {
    EXPECT_NEAR(tis.Total(), result.measured_seconds, tolerance);
  }
  EXPECT_GE(result.drive_utilization, 0.0);
  EXPECT_LE(result.drive_utilization, 1.0 + 1e-9);
  EXPECT_GE(result.p99_delay_seconds, result.p95_delay_seconds);
  EXPECT_LE(result.p99_delay_seconds, result.max_delay_seconds);
}

enum class Algo { kFifo, kGreedy, kEnvelope };

std::unique_ptr<Scheduler> MakeScheduler(Algo algo, const Rig& rig) {
  switch (algo) {
    case Algo::kFifo:
      return std::make_unique<FifoScheduler>(&rig.jukebox, &rig.catalog);
    case Algo::kGreedy:
      return std::make_unique<GreedyScheduler>(
          &rig.jukebox, &rig.catalog, TapePolicy::kMaxBandwidth,
          /*dynamic=*/true);
    case Algo::kEnvelope:
      return std::make_unique<EnvelopeScheduler>(
          &rig.jukebox, &rig.catalog, TapePolicy::kMaxBandwidth);
  }
  return nullptr;
}

class IdentityTest
    : public ::testing::TestWithParam<std::tuple<Algo, QueuingModel>> {};

TEST_P(IdentityTest, StateTimeSumsToMeasuredWindow) {
  const auto [algo, model] = GetParam();
  Rig rig(PaperJukebox(), LayoutSpec{});
  std::unique_ptr<Scheduler> scheduler = MakeScheduler(algo, rig);
  Simulator sim(&rig.jukebox, &rig.catalog, scheduler.get(),
                ShortSim(model));
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 0);
  ExpectIdentity(result, /*num_drives=*/1);
  // Fault-free runs never charge down or background time.
  const obs::DriveTimeInState& tis = result.time_in_state[0];
  EXPECT_DOUBLE_EQ(tis[obs::DriveActivity::kDown], 0.0);
  EXPECT_DOUBLE_EQ(tis[obs::DriveActivity::kBackground], 0.0);
  EXPECT_GT(tis[obs::DriveActivity::kReading], 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, IdentityTest,
    ::testing::Combine(::testing::Values(Algo::kFifo, Algo::kGreedy,
                                         Algo::kEnvelope),
                       ::testing::Values(QueuingModel::kClosed,
                                         QueuingModel::kOpen)));

TEST(IdentityFaults, HoldsUnderFaultInjection) {
  LayoutSpec layout;
  layout.num_replicas = 2;
  Rig rig(PaperJukebox(), layout);
  GreedyScheduler scheduler(&rig.jukebox, &rig.catalog,
                            TapePolicy::kMaxBandwidth, /*dynamic=*/true);
  SimulationConfig config = ShortSim(QueuingModel::kClosed);
  config.faults.transient_read_error_prob = 0.05;
  config.faults.permanent_media_error_prob = 0.01;
  config.faults.whole_tape_fraction = 0.1;
  config.faults.drive_mtbf_seconds = 40'000;
  config.faults.drive_mttr_seconds = 3'000;
  config.faults.robot_fault_prob = 0.02;
  Simulator sim(&rig.jukebox, &rig.catalog, &scheduler, config);
  const SimulationResult result = sim.Run();
  ExpectIdentity(result, /*num_drives=*/1);
  // The drive failures configured above must show up as down time.
  EXPECT_GT(result.time_in_state[0][obs::DriveActivity::kDown], 0.0);
}

TEST(IdentityFaults, HoldsWithScrubAndRepair) {
  LayoutSpec layout;
  layout.num_replicas = 2;
  Rig rig(PaperJukebox(), layout);
  GreedyScheduler scheduler(&rig.jukebox, &rig.catalog,
                            TapePolicy::kMaxBandwidth, /*dynamic=*/true);
  SimulationConfig config = ShortSim(QueuingModel::kOpen);
  // Light load: scrub only runs on an idle drive, and the default sweep
  // load saturates it.
  config.workload.mean_interarrival_seconds = 600;
  config.faults.permanent_media_error_prob = 0.02;
  config.repair.enable_repair = true;
  config.repair.scrub_interval_seconds = 20'000;
  Simulator sim(&rig.jukebox, &rig.catalog, &scheduler, config);
  const SimulationResult result = sim.Run();
  ExpectIdentity(result, /*num_drives=*/1);
  // Scrub/repair work is charged to the background state.
  EXPECT_GT(result.time_in_state[0][obs::DriveActivity::kBackground], 0.0);
}

TEST(IdentityMultiDrive, HoldsPerDriveFaultFree) {
  Rig rig(PaperJukebox(), LayoutSpec{});
  MultiDriveConfig drives;
  drives.num_drives = 3;
  MultiDriveSimulator sim(&rig.jukebox, &rig.catalog, drives,
                          ShortSim(QueuingModel::kClosed));
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 0);
  ExpectIdentity(result, /*num_drives=*/3);
  for (const obs::DriveTimeInState& tis : result.time_in_state) {
    EXPECT_GT(tis[obs::DriveActivity::kReading], 0.0);
  }
}

TEST(IdentityMultiDrive, HoldsPerDriveUnderFaults) {
  LayoutSpec layout;
  layout.num_replicas = 2;
  Rig rig(PaperJukebox(), layout);
  MultiDriveConfig drives;
  drives.num_drives = 2;
  SimulationConfig config = ShortSim(QueuingModel::kClosed);
  config.faults.transient_read_error_prob = 0.05;
  config.faults.permanent_media_error_prob = 0.01;
  config.faults.drive_mtbf_seconds = 30'000;
  config.faults.drive_mttr_seconds = 2'000;
  config.faults.robot_fault_prob = 0.02;
  MultiDriveSimulator sim(&rig.jukebox, &rig.catalog, drives, config);
  const SimulationResult result = sim.Run();
  ExpectIdentity(result, /*num_drives=*/2);
  double down = 0;
  for (const obs::DriveTimeInState& tis : result.time_in_state) {
    down += tis[obs::DriveActivity::kDown];
  }
  EXPECT_GT(down, 0.0);
}

TEST(DriveUtilization, MatchesTimeInStateDerivation) {
  Rig rig(PaperJukebox(), LayoutSpec{});
  GreedyScheduler scheduler(&rig.jukebox, &rig.catalog,
                            TapePolicy::kMaxBandwidth, /*dynamic=*/true);
  Simulator sim(&rig.jukebox, &rig.catalog, &scheduler,
                ShortSim(QueuingModel::kClosed));
  const SimulationResult result = sim.Run();
  ASSERT_EQ(result.time_in_state.size(), 1u);
  const double busy = result.time_in_state[0].BusySeconds();
  EXPECT_NEAR(result.drive_utilization, busy / result.measured_seconds,
              1e-12);
  // Whole-window busy fraction can only exceed the transfer-only one.
  EXPECT_GE(result.drive_utilization, result.transfer_utilization);
}

}  // namespace
}  // namespace tapejuke
