// Tests for the fault-injection draw engine: config validation, draw
// gating, determinism, and the retry-escalation chain.

#include "sim/fault_model.h"

#include <gtest/gtest.h>

#include <vector>

namespace tapejuke {
namespace {

FaultConfig AllOn() {
  FaultConfig config;
  config.transient_read_error_prob = 0.3;
  config.max_read_retries = 2;
  config.permanent_media_error_prob = 0.05;
  config.whole_tape_fraction = 0.5;
  config.drive_mtbf_seconds = 1000;
  config.drive_mttr_seconds = 50;
  config.robot_fault_prob = 0.1;
  return config;
}

TEST(FaultConfig, DefaultIsDisabledAndValid) {
  const FaultConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_TRUE(config.Validate().ok());
}

TEST(FaultConfig, AnySingleRateEnables) {
  FaultConfig transient;
  transient.transient_read_error_prob = 0.01;
  EXPECT_TRUE(transient.enabled());
  FaultConfig permanent;
  permanent.permanent_media_error_prob = 0.01;
  EXPECT_TRUE(permanent.enabled());
  FaultConfig drive;
  drive.drive_mtbf_seconds = 100;
  drive.drive_mttr_seconds = 10;
  EXPECT_TRUE(drive.enabled());
  FaultConfig robot;
  robot.robot_fault_prob = 0.01;
  EXPECT_TRUE(robot.enabled());
}

TEST(FaultConfig, ValidateRejectsBadValues) {
  // Regression for construction-time validation: each invalid field must
  // be caught on its own.
  FaultConfig config = AllOn();
  EXPECT_TRUE(config.Validate().ok());

  config = AllOn();
  config.transient_read_error_prob = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config.transient_read_error_prob = 1.0;  // certain failure retries forever
  EXPECT_FALSE(config.Validate().ok());

  config = AllOn();
  config.max_read_retries = -1;
  EXPECT_FALSE(config.Validate().ok());

  config = AllOn();
  config.permanent_media_error_prob = -0.5;
  EXPECT_FALSE(config.Validate().ok());
  config.permanent_media_error_prob = 1.0;
  EXPECT_FALSE(config.Validate().ok());

  config = AllOn();
  config.whole_tape_fraction = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config.whole_tape_fraction = 1.1;
  EXPECT_FALSE(config.Validate().ok());
  config.whole_tape_fraction = 1.0;  // every permanent error kills the tape
  EXPECT_TRUE(config.Validate().ok());

  config = AllOn();
  config.drive_mtbf_seconds = -1;
  EXPECT_FALSE(config.Validate().ok());

  config = AllOn();
  config.drive_mttr_seconds = 0;  // MTBF on, zero MTTR: instant repairs
  EXPECT_FALSE(config.Validate().ok());
  config.drive_mttr_seconds = -5;
  EXPECT_FALSE(config.Validate().ok());

  config = AllOn();
  config.robot_fault_prob = 1.0;  // the handoff would slip forever
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FaultModel, SameSeedSameDrawSequence) {
  FaultModel a(AllOn(), /*workload_seed=*/7);
  FaultModel b(AllOn(), /*workload_seed=*/7);
  for (int i = 0; i < 200; ++i) {
    const ReadOutcome oa = a.NextReadOutcome();
    const ReadOutcome ob = b.NextReadOutcome();
    EXPECT_EQ(oa.retries, ob.retries);
    EXPECT_EQ(oa.permanent_error, ob.permanent_error);
    EXPECT_EQ(oa.whole_tape, ob.whole_tape);
    EXPECT_EQ(oa.escalated, ob.escalated);
    EXPECT_EQ(a.NextRobotFaults(), b.NextRobotFaults());
    EXPECT_DOUBLE_EQ(a.NextFailureGap(), b.NextFailureGap());
    EXPECT_DOUBLE_EQ(a.NextRepairTime(), b.NextRepairTime());
  }
}

TEST(FaultModel, ExplicitSeedOverridesWorkloadDerivation) {
  FaultConfig seeded = AllOn();
  seeded.seed = 42;
  // Same explicit seed, different workload seeds: identical streams.
  FaultModel a(seeded, 1);
  FaultModel b(seeded, 2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextReadOutcome().retries, b.NextReadOutcome().retries);
  }
  // seed == 0: the stream is derived from (and varies with) the workload
  // seed, and differs from the workload stream itself.
  FaultConfig derived = AllOn();
  FaultModel c(derived, 1);
  FaultModel d(derived, 2);
  bool any_difference = false;
  for (int i = 0; i < 200 && !any_difference; ++i) {
    any_difference = c.NextRobotFaults() != d.NextRobotFaults() ||
                     c.NextFailureGap() != d.NextFailureGap();
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultModel, ZeroRatesDrawNothing) {
  // With a class disabled its draw must return the null outcome without
  // consuming randomness, so enabling one class never perturbs another.
  FaultConfig only_robot;
  only_robot.robot_fault_prob = 0.2;
  FaultModel a(only_robot, 9);
  FaultModel b(only_robot, 9);
  // a interleaves read-outcome draws (which must consume nothing);
  // b draws robot faults back to back.
  std::vector<int> from_a, from_b;
  for (int i = 0; i < 100; ++i) {
    const ReadOutcome outcome = a.NextReadOutcome();
    EXPECT_EQ(outcome.retries, 0);
    EXPECT_FALSE(outcome.permanent_error);
    from_a.push_back(a.NextRobotFaults());
    from_b.push_back(b.NextRobotFaults());
  }
  EXPECT_EQ(from_a, from_b);
}

TEST(FaultModel, RetryBudgetExhaustionEscalates) {
  // With transient errors certain-adjacent (p close to 1) the budget is
  // exhausted quickly and the outcome escalates to a permanent error.
  FaultConfig config;
  config.transient_read_error_prob = 0.99;
  config.max_read_retries = 2;
  FaultModel model(config, 3);
  bool saw_escalation = false;
  for (int i = 0; i < 100 && !saw_escalation; ++i) {
    const ReadOutcome outcome = model.NextReadOutcome();
    if (outcome.permanent_error) {
      EXPECT_TRUE(outcome.escalated);
      EXPECT_EQ(outcome.retries, config.max_read_retries);
      saw_escalation = true;
    }
  }
  EXPECT_TRUE(saw_escalation);
}

TEST(FaultModel, ZeroRetryBudgetEscalatesImmediately) {
  FaultConfig config;
  config.transient_read_error_prob = 0.99;
  config.max_read_retries = 0;
  FaultModel model(config, 4);
  bool saw_escalation = false;
  for (int i = 0; i < 50 && !saw_escalation; ++i) {
    const ReadOutcome outcome = model.NextReadOutcome();
    EXPECT_EQ(outcome.retries, 0);
    if (outcome.permanent_error) {
      EXPECT_TRUE(outcome.escalated);
      saw_escalation = true;
    }
  }
  EXPECT_TRUE(saw_escalation);
}

TEST(FaultModel, RetriesNeverExceedBudget) {
  FaultConfig config = AllOn();
  config.max_read_retries = 3;
  FaultModel model(config, 11);
  for (int i = 0; i < 1000; ++i) {
    const ReadOutcome outcome = model.NextReadOutcome();
    EXPECT_LE(outcome.retries, config.max_read_retries);
    EXPECT_GE(outcome.retries, 0);
    if (outcome.whole_tape || outcome.escalated) {
      EXPECT_TRUE(outcome.permanent_error);
    }
  }
}

TEST(FaultStats, AccumulateAndCompare) {
  FaultStats a;
  a.transient_read_errors = 3;
  a.failovers = 1;
  a.drive_repair_seconds = 2.5;
  FaultStats b;
  b.transient_read_errors = 2;
  b.dead_tapes = 1;
  b.drive_repair_seconds = 1.5;
  a += b;
  EXPECT_EQ(a.transient_read_errors, 5);
  EXPECT_EQ(a.dead_tapes, 1);
  EXPECT_EQ(a.failovers, 1);
  EXPECT_DOUBLE_EQ(a.drive_repair_seconds, 4.0);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == a);
}

}  // namespace
}  // namespace tapejuke
