// Unit tests for Tape and Drive.

#include "tape/tape.h"

#include <gtest/gtest.h>

#include "tape/drive.h"
#include "tape/timing_model.h"

namespace tapejuke {
namespace {

TEST(Tape, SlotGeometry) {
  Tape tape(/*id=*/3, /*capacity_mb=*/7168, /*block_size_mb=*/16);
  EXPECT_EQ(tape.id(), 3);
  EXPECT_EQ(tape.num_slots(), 448);
  EXPECT_EQ(tape.num_blocks(), 0);
  EXPECT_EQ(tape.PositionOfSlot(0), 0);
  EXPECT_EQ(tape.PositionOfSlot(10), 160);
  EXPECT_EQ(tape.EndPositionOfSlot(10), 176);
  EXPECT_EQ(tape.SlotOfPosition(160), 10);
}

TEST(Tape, PlaceAndLookup) {
  Tape tape(0, 160, 16);
  ASSERT_TRUE(tape.PlaceBlock(100, 2).ok());
  EXPECT_EQ(tape.num_blocks(), 1);
  EXPECT_EQ(tape.BlockAtSlot(2), 100);
  EXPECT_EQ(tape.BlockAtSlot(3), kInvalidBlock);
  ASSERT_TRUE(tape.SlotOf(100).has_value());
  EXPECT_EQ(*tape.SlotOf(100), 2);
  EXPECT_FALSE(tape.SlotOf(999).has_value());
}

TEST(Tape, RejectsOccupiedSlot) {
  Tape tape(0, 160, 16);
  ASSERT_TRUE(tape.PlaceBlock(1, 0).ok());
  const Status s = tape.PlaceBlock(2, 0);
  EXPECT_EQ(s.code(), StatusCode::kCapacityExceeded);
}

TEST(Tape, RejectsDuplicateBlockOnSameTape) {
  Tape tape(0, 160, 16);
  ASSERT_TRUE(tape.PlaceBlock(1, 0).ok());
  // The paper's replication model: at most one copy per tape.
  EXPECT_FALSE(tape.PlaceBlock(1, 5).ok());
}

TEST(Tape, RejectsOutOfRangeSlot) {
  Tape tape(0, 160, 16);
  EXPECT_EQ(tape.PlaceBlock(1, 10).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(tape.PlaceBlock(1, -1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(tape.PlaceBlock(-5, 0).code(), StatusCode::kInvalidArgument);
}

TEST(Tape, ClearSlotFreesBlock) {
  Tape tape(0, 160, 16);
  ASSERT_TRUE(tape.PlaceBlock(7, 4).ok());
  tape.ClearSlot(4);
  EXPECT_EQ(tape.num_blocks(), 0);
  EXPECT_FALSE(tape.SlotOf(7).has_value());
  EXPECT_TRUE(tape.PlaceBlock(7, 4).ok());
}

class DriveTest : public ::testing::Test {
 protected:
  TimingModel model_{TimingParams::Exabyte8505XL()};
  Drive drive_{&model_};
};

TEST_F(DriveTest, StartsEmpty) {
  EXPECT_FALSE(drive_.has_tape());
  EXPECT_EQ(drive_.loaded_tape(), kInvalidTape);
  EXPECT_EQ(drive_.head(), 0);
}

TEST_F(DriveTest, LoadLocateReadSequence) {
  EXPECT_DOUBLE_EQ(drive_.Load(2), 42.0);
  EXPECT_TRUE(drive_.has_tape());
  EXPECT_EQ(drive_.loaded_tape(), 2);

  // Forward locate 100 MB: long regime.
  EXPECT_DOUBLE_EQ(drive_.LocateTo(100), 14.342 + 0.028 * 100);
  EXPECT_EQ(drive_.head(), 100);
  // Read after forward locate: startup 0.38.
  EXPECT_DOUBLE_EQ(drive_.Read(16), 0.38 + 1.77 * 16);
  EXPECT_EQ(drive_.head(), 116);
  // Contiguous read streams with no startup.
  EXPECT_DOUBLE_EQ(drive_.Read(16), 1.77 * 16);
  EXPECT_EQ(drive_.head(), 132);
}

TEST_F(DriveTest, ReadAfterReverseLocateHasNoStartup) {
  drive_.Load(0);
  drive_.LocateTo(1000);
  drive_.LocateTo(500);  // reverse
  EXPECT_DOUBLE_EQ(drive_.Read(16), 1.77 * 16);
}

TEST_F(DriveTest, ReadAtCombinesLocateAndRead) {
  drive_.Load(0);
  const double combined = drive_.ReadAt(200, 16);
  EXPECT_DOUBLE_EQ(combined,
                   (14.342 + 0.028 * 200) + (0.38 + 1.77 * 16));
  EXPECT_EQ(drive_.head(), 216);
}

TEST_F(DriveTest, RewindReturnsToZeroWithBotOverhead) {
  drive_.Load(0);
  drive_.LocateTo(2000);
  EXPECT_DOUBLE_EQ(drive_.Rewind(), 13.74 + 0.0286 * 2000 + 21.0);
  EXPECT_EQ(drive_.head(), 0);
}

TEST_F(DriveTest, EjectAfterRewind) {
  drive_.Load(1);
  drive_.LocateTo(64);
  drive_.Rewind();
  EXPECT_DOUBLE_EQ(drive_.Eject(), 19.0);
  EXPECT_FALSE(drive_.has_tape());
}

TEST_F(DriveTest, ZeroDistanceLocateIsFree) {
  drive_.Load(0);
  drive_.LocateTo(100);
  EXPECT_DOUBLE_EQ(drive_.LocateTo(100), 0.0);
}

using DriveDeathTest = DriveTest;

TEST_F(DriveDeathTest, EjectWithoutRewindAborts) {
  drive_.Load(0);
  drive_.LocateTo(100);
  EXPECT_DEATH(drive_.Eject(), "rewound before eject");
}

TEST_F(DriveDeathTest, OperationsWithoutTapeAbort) {
  EXPECT_DEATH(drive_.LocateTo(1), "no tape");
  EXPECT_DEATH(drive_.Read(16), "no tape");
}

TEST_F(DriveDeathTest, DoubleLoadAborts) {
  drive_.Load(0);
  EXPECT_DEATH(drive_.Load(1), "occupied");
}

}  // namespace
}  // namespace tapejuke
