// Integration tests for the Simulator against small configurations.

#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>

#include "layout/placement.h"
#include "sched/fifo_scheduler.h"
#include "sched/greedy_scheduler.h"

namespace tapejuke {
namespace {

struct Rig {
  explicit Rig(const JukeboxConfig& jb_config, const LayoutSpec& layout)
      : jukebox(jb_config),
        catalog(LayoutBuilder::Build(&jukebox, layout).value()) {}

  Jukebox jukebox;
  Catalog catalog;
};

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;
  return config;
}

SimulationConfig ShortSim(QueuingModel model) {
  SimulationConfig config;
  config.duration_seconds = 200'000;
  config.warmup_seconds = 20'000;
  config.workload.model = model;
  config.workload.queue_length = 40;
  config.workload.mean_interarrival_seconds = 120;
  config.workload.seed = 17;
  return config;
}

TEST(SimulationConfig, Validation) {
  SimulationConfig config = ShortSim(QueuingModel::kClosed);
  EXPECT_TRUE(config.Validate().ok());
  config.duration_seconds = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ShortSim(QueuingModel::kClosed);
  config.warmup_seconds = config.duration_seconds;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(Simulator, ClosedModelProducesSteadyThroughput) {
  Rig rig(PaperJukebox(), LayoutSpec{});
  GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                        TapePolicy::kMaxBandwidth, /*dynamic=*/true);
  Simulator sim(&rig.jukebox, &rig.catalog, &sched,
                ShortSim(QueuingModel::kClosed));
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 100);
  EXPECT_GT(result.throughput_mb_per_s, 0.05);
  EXPECT_GT(result.mean_delay_seconds, 0.0);
  // Closed model: outstanding population is pinned at the queue length.
  EXPECT_NEAR(result.mean_outstanding, 40.0, 0.5);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = []() {
    Rig rig(PaperJukebox(), LayoutSpec{});
    GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                          TapePolicy::kMaxBandwidth, true);
    Simulator sim(&rig.jukebox, &rig.catalog, &sched,
                  ShortSim(QueuingModel::kClosed));
    return sim.Run();
  };
  const SimulationResult a = run();
  const SimulationResult b = run();
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_DOUBLE_EQ(a.throughput_mb_per_s, b.throughput_mb_per_s);
  EXPECT_DOUBLE_EQ(a.mean_delay_seconds, b.mean_delay_seconds);
  EXPECT_EQ(a.counters.tape_switches, b.counters.tape_switches);
}

TEST(Simulator, DifferentSeedsDiffer) {
  auto run = [](uint64_t seed) {
    Rig rig(PaperJukebox(), LayoutSpec{});
    GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                          TapePolicy::kMaxBandwidth, true);
    SimulationConfig config = ShortSim(QueuingModel::kClosed);
    config.workload.seed = seed;
    Simulator sim(&rig.jukebox, &rig.catalog, &sched, config);
    return sim.Run();
  };
  EXPECT_NE(run(1).mean_delay_seconds, run(2).mean_delay_seconds);
}

TEST(Simulator, OpenModelLightLoadKeepsQueueShort) {
  Rig rig(PaperJukebox(), LayoutSpec{});
  GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                        TapePolicy::kMaxBandwidth, true);
  // Mean interarrival 600 s >> ~100 s service: nearly idle system.
  SimulationConfig config = ShortSim(QueuingModel::kOpen);
  config.workload.mean_interarrival_seconds = 600;
  Simulator sim(&rig.jukebox, &rig.catalog, &sched, config);
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 50);
  EXPECT_LT(result.mean_outstanding, 3.0);
  // Arrival rate caps throughput: ~0.1 req/min.
  EXPECT_NEAR(result.requests_per_minute, 0.1, 0.03);
}

TEST(Simulator, OpenModelOverloadGrowsQueue) {
  Rig rig(PaperJukebox(), LayoutSpec{});
  GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                        TapePolicy::kMaxBandwidth, true);
  // Mean interarrival 20 s << service time: the queue must accumulate.
  SimulationConfig config = ShortSim(QueuingModel::kOpen);
  config.workload.mean_interarrival_seconds = 20;
  Simulator sim(&rig.jukebox, &rig.catalog, &sched, config);
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.mean_outstanding, 100.0);
}

TEST(Simulator, BusyTimeAccountingIsConsistent) {
  Rig rig(PaperJukebox(), LayoutSpec{});
  GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                        TapePolicy::kMaxBandwidth, true);
  SimulationConfig config = ShortSim(QueuingModel::kClosed);
  config.warmup_seconds = 0;
  Simulator sim(&rig.jukebox, &rig.catalog, &sched, config);
  const SimulationResult result = sim.Run();
  // A saturated closed system: the drive is busy almost the whole run (it
  // may overshoot slightly because the last operation completes past the
  // nominal duration).
  EXPECT_NEAR(result.counters.BusySeconds(), result.simulated_seconds,
              result.simulated_seconds * 0.01);
  // Bytes read match blocks read.
  EXPECT_EQ(result.counters.mb_read, result.counters.blocks_read * 16);
}

TEST(Simulator, FifoMakesProgressToo) {
  Rig rig(PaperJukebox(), LayoutSpec{});
  FifoScheduler sched(&rig.jukebox, &rig.catalog);
  Simulator sim(&rig.jukebox, &rig.catalog, &sched,
                ShortSim(QueuingModel::kClosed));
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 100);
}

TEST(SimulatorDeathTest, RunTwiceAborts) {
  Rig rig(PaperJukebox(), LayoutSpec{});
  GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                        TapePolicy::kMaxBandwidth, true);
  SimulationConfig config = ShortSim(QueuingModel::kClosed);
  config.duration_seconds = 5000;
  config.warmup_seconds = 0;
  Simulator sim(&rig.jukebox, &rig.catalog, &sched, config);
  sim.Run();
  EXPECT_DEATH(sim.Run(), "once");
}

}  // namespace
}  // namespace tapejuke
