// Tests for the TJ_CHECK assertion macros.

#include "util/check.h"

#include <gtest/gtest.h>

namespace tapejuke {
namespace {

TEST(Check, PassingConditionsDoNothing) {
  TJ_CHECK(true);
  TJ_CHECK_EQ(1, 1);
  TJ_CHECK_NE(1, 2);
  TJ_CHECK_LT(1, 2);
  TJ_CHECK_LE(2, 2);
  TJ_CHECK_GT(3, 2);
  TJ_CHECK_GE(3, 3);
  TJ_DCHECK(true);
  SUCCEED();
}

TEST(CheckDeathTest, FailureAbortsWithLocationAndCondition) {
  EXPECT_DEATH(TJ_CHECK(1 == 2), "TJ_CHECK failed at .*check_test.cc");
  EXPECT_DEATH(TJ_CHECK_EQ(3, 4), "\\(3\\)==\\(4\\)");
}

TEST(CheckDeathTest, StreamedOperandsAppearInMessage) {
  const int value = 42;
  EXPECT_DEATH(TJ_CHECK(false) << "bad value" << value, "bad value 42");
}

TEST(CheckDeathTest, ComparisonMacros) {
  EXPECT_DEATH(TJ_CHECK_LT(5, 5), "");
  EXPECT_DEATH(TJ_CHECK_GT(5, 5), "");
  EXPECT_DEATH(TJ_CHECK_NE(7, 7), "");
}

TEST(Check, ConditionNotReevaluated) {
  // The while-loop formulation must evaluate a passing condition once.
  int evaluations = 0;
  TJ_CHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

#ifdef NDEBUG
TEST(Check, DcheckCompiledOutInRelease) {
  int evaluations = 0;
  TJ_DCHECK([&] {
    ++evaluations;
    return false;
  }());
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(CheckDeathTest, DcheckActiveInDebug) {
  EXPECT_DEATH(TJ_DCHECK(false), "TJ_CHECK failed");
}
#endif

}  // namespace
}  // namespace tapejuke
