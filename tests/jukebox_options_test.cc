// Tests for jukebox configuration variants: the eject-anywhere ablation
// knob and the fast-drive timing parameters, through to experiment level.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "tape/jukebox.h"

namespace tapejuke {
namespace {

TEST(EjectAnywhere, SwitchSkipsRewindTime) {
  JukeboxConfig config;
  config.num_tapes = 4;
  config.rewind_before_eject = false;
  Jukebox jukebox(config);
  jukebox.SwitchTo(0);
  jukebox.ReadBlockAt(1600);  // head deep in the tape
  // Switch pays only eject + robot + load; no rewind time.
  EXPECT_DOUBLE_EQ(jukebox.SwitchTo(1), 19 + 20 + 42);
  EXPECT_DOUBLE_EQ(jukebox.counters().rewind_seconds, 0.0);
  EXPECT_EQ(jukebox.head(), 0);  // fresh tape still starts at 0
}

TEST(EjectAnywhere, RewindingDriveChargesRewind) {
  JukeboxConfig config;
  config.num_tapes = 4;
  config.rewind_before_eject = true;
  Jukebox jukebox(config);
  jukebox.SwitchTo(0);
  jukebox.ReadBlockAt(1600);
  EXPECT_GT(jukebox.SwitchTo(1), 81.0);
  EXPECT_GT(jukebox.counters().rewind_seconds, 0.0);
}

TEST(EjectAnywhere, ImprovesSimulatedThroughput) {
  auto run = [](bool rewind) {
    ExperimentConfig config;
    config.jukebox.rewind_before_eject = rewind;
    config.sim.duration_seconds = 400'000;
    config.sim.warmup_seconds = 40'000;
    config.sim.workload.queue_length = 60;
    config.sim.workload.seed = 9;
    return ExperimentRunner::Run(config).value().sim;
  };
  EXPECT_GT(run(false).requests_per_minute,
            1.05 * run(true).requests_per_minute);
}

TEST(FastDrive, ImprovesSimulatedThroughputMassively) {
  auto run = [](const TimingParams& timing) {
    ExperimentConfig config;
    config.jukebox.timing = timing;
    config.sim.duration_seconds = 400'000;
    config.sim.warmup_seconds = 40'000;
    config.sim.workload.queue_length = 60;
    config.sim.workload.seed = 9;
    return ExperimentRunner::Run(config).value().sim;
  };
  const SimulationResult slow = run(TimingParams::Exabyte8505XL());
  const SimulationResult fast = run(TimingParams::FastDrive());
  EXPECT_GT(fast.requests_per_minute, 3.0 * slow.requests_per_minute);
}

TEST(FastDrive, QualitativeOrderingsSurvive) {
  // §2.1: changing the drive speed "does not materially alter our results
  // about choice of scheduling algorithm, the amount of replication, and
  // the data placement". Spot-check: replication still helps, and the
  // envelope still beats dynamic, on the fast drive.
  auto run = [](const std::string& algo, int nr) {
    ExperimentConfig config;
    config.jukebox.timing = TimingParams::FastDrive();
    config.layout.num_replicas = nr;
    config.layout.start_position = nr == 0 ? 0.0 : 1.0;
    config.algorithm = AlgorithmSpec::Parse(algo).value();
    config.sim.duration_seconds = 400'000;
    config.sim.warmup_seconds = 40'000;
    config.sim.workload.queue_length = 60;
    config.sim.workload.seed = 10;
    return ExperimentRunner::Run(config).value().sim;
  };
  const SimulationResult plain = run("dynamic-max-bandwidth", 0);
  const SimulationResult replicated = run("dynamic-max-bandwidth", 9);
  const SimulationResult envelope = run("envelope-max-bandwidth", 9);
  EXPECT_GT(replicated.requests_per_minute, plain.requests_per_minute);
  EXPECT_GE(envelope.requests_per_minute,
            0.99 * replicated.requests_per_minute);
}

TEST(OrganPipe, RunsEndToEndAndCentersHotData) {
  ExperimentConfig config;
  config.layout.placement = PlacementScheme::kOrganPipe;
  config.sim.duration_seconds = 200'000;
  config.sim.warmup_seconds = 20'000;
  config.sim.workload.queue_length = 40;
  config.sim.workload.seed = 11;
  const StatusOr<ExperimentResult> result = ExperimentRunner::Run(config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->sim.completed_requests, 100);
}

}  // namespace
}  // namespace tapejuke
