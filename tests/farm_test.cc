// Tests for the jukebox-farm simulator.

#include "core/farm.h"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "core/results_io.h"

namespace tapejuke {
namespace {

FarmConfig BaseFarm(int32_t boxes, int64_t total_queue) {
  FarmConfig config;
  config.num_jukeboxes = boxes;
  config.per_jukebox.algorithm =
      AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
  config.per_jukebox.sim.duration_seconds = 400'000;
  config.per_jukebox.sim.warmup_seconds = 40'000;
  config.per_jukebox.sim.workload.queue_length = total_queue;
  config.per_jukebox.sim.workload.seed = 77;
  return config;
}

std::string FarmJson(const FarmResult& result) {
  std::ostringstream out;
  JsonWriter w(&out);
  WriteJson(&w, result);
  return out.str();
}

TEST(FarmConfig, Validation) {
  FarmConfig config = BaseFarm(2, 60);
  EXPECT_TRUE(config.Validate().ok());
  config.num_jukeboxes = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.num_jukeboxes = 2;
  config.drives_per_jukebox = 0;
  EXPECT_FALSE(config.Validate().ok());
  // Closed farms need at least one process per box.
  FarmConfig sparse = BaseFarm(8, 4);
  EXPECT_FALSE(sparse.Validate().ok());
}

TEST(Farm, SingleBoxMatchesPlainSimulator) {
  FarmConfig config = BaseFarm(1, 60);
  const FarmResult farm = FarmSimulator(config).Run();
  const ExperimentResult plain =
      ExperimentRunner::Run(config.per_jukebox).value();
  // One box, same config but the box runs under its derived per-box seed;
  // expect statistical agreement.
  EXPECT_NEAR(farm.aggregate.requests_per_minute /
                  plain.sim.requests_per_minute,
              1.0, 0.05);
}

TEST(Farm, ThroughputScalesWithBoxes) {
  // Fixed per-box load: total population scales with the farm.
  const FarmResult one = FarmSimulator(BaseFarm(1, 60)).Run();
  const FarmResult three = FarmSimulator(BaseFarm(3, 180)).Run();
  EXPECT_NEAR(three.aggregate.requests_per_minute /
                  one.aggregate.requests_per_minute,
              3.0, 0.25);
}

TEST(Farm, PopulationSplitsEvenly) {
  const FarmResult result = FarmSimulator(BaseFarm(4, 120)).Run();
  ASSERT_EQ(result.mean_outstanding_per_jukebox.size(), 4u);
  const double total = std::accumulate(
      result.mean_outstanding_per_jukebox.begin(),
      result.mean_outstanding_per_jukebox.end(), 0.0);
  EXPECT_NEAR(total, 120.0, 1.0);
  for (const double outstanding : result.mean_outstanding_per_jukebox) {
    EXPECT_NEAR(outstanding, 30.0, 4.0);
  }
  // Work is shared: every box completed a fair share.
  for (const int64_t completions : result.completions_per_jukebox) {
    EXPECT_GT(completions,
              result.aggregate.completed_requests / 8);
  }
}

TEST(Farm, FixedSplitApproximationIsClose) {
  // §4.8 assumes a farm of n boxes at total population Q behaves like one
  // box at Q/n. Compare a 3-box farm (population 180) against a single box
  // at queue 60.
  const FarmResult farm = FarmSimulator(BaseFarm(3, 180)).Run();
  FarmConfig single = BaseFarm(1, 60);
  const FarmResult approx = FarmSimulator(single).Run();
  const double per_box_thr = farm.aggregate.requests_per_minute / 3.0;
  EXPECT_NEAR(per_box_thr / approx.aggregate.requests_per_minute, 1.0,
              0.10);
}

TEST(Farm, OpenModelRoutesPoissonStream) {
  FarmConfig config = BaseFarm(2, 60);
  config.per_jukebox.sim.workload.model = QueuingModel::kOpen;
  config.per_jukebox.sim.workload.mean_interarrival_seconds = 40;
  const FarmResult result = FarmSimulator(config).Run();
  // Two boxes absorb a 1.5/min farm-wide stream.
  EXPECT_NEAR(result.aggregate.requests_per_minute, 1.5, 0.3);
}

TEST(Farm, Deterministic) {
  const FarmResult a = FarmSimulator(BaseFarm(2, 80)).Run();
  const FarmResult b = FarmSimulator(BaseFarm(2, 80)).Run();
  EXPECT_EQ(a.aggregate.completed_requests, b.aggregate.completed_requests);
  EXPECT_EQ(a.completions_per_jukebox, b.completions_per_jukebox);
}

TEST(Farm, BitIdenticalAcrossThreadCountsClosed) {
  FarmConfig serial = BaseFarm(5, 150);
  serial.threads = 1;
  FarmConfig parallel = BaseFarm(5, 150);
  parallel.threads = 4;
  const FarmResult a = FarmSimulator(serial).Run();
  const FarmResult b = FarmSimulator(parallel).Run();
  EXPECT_EQ(FarmJson(a), FarmJson(b));
}

TEST(Farm, BitIdenticalAcrossThreadCountsOpen) {
  FarmConfig serial = BaseFarm(4, 60);
  serial.per_jukebox.sim.workload.model = QueuingModel::kOpen;
  serial.per_jukebox.sim.workload.mean_interarrival_seconds = 50;
  FarmConfig parallel = serial;
  serial.threads = 1;
  parallel.threads = 8;
  const FarmResult a = FarmSimulator(serial).Run();
  const FarmResult b = FarmSimulator(parallel).Run();
  EXPECT_EQ(FarmJson(a), FarmJson(b));
}

TEST(Farm, MultiDriveBoxesRunAndOutperformSingleDrive) {
  FarmConfig single = BaseFarm(2, 120);
  FarmConfig dual = BaseFarm(2, 120);
  dual.drives_per_jukebox = 2;
  const FarmResult one = FarmSimulator(single).Run();
  const FarmResult two = FarmSimulator(dual).Run();
  // A second drive per box adds real (sub-linear) throughput.
  EXPECT_GT(two.aggregate.requests_per_minute,
            1.2 * one.aggregate.requests_per_minute);
  // And the multi-drive-backed farm stays thread-invariant.
  FarmConfig dual_parallel = dual;
  dual.threads = 1;
  dual_parallel.threads = 4;
  EXPECT_EQ(FarmJson(FarmSimulator(dual).Run()),
            FarmJson(FarmSimulator(dual_parallel).Run()));
}

TEST(Farm, FaultInjectionAggregatesAcrossBoxes) {
  FarmConfig config = BaseFarm(3, 90);
  config.per_jukebox.layout.num_replicas = 2;
  config.per_jukebox.sim.faults.permanent_media_error_prob = 0.01;
  config.per_jukebox.sim.faults.transient_read_error_prob = 0.02;
  const FarmResult result = FarmSimulator(config).Run();
  EXPECT_TRUE(result.aggregate.fault_injection);
  EXPECT_GT(result.aggregate.faults.permanent_media_errors, 0);
  EXPECT_GT(result.aggregate.faults.transient_read_errors, 0);
  EXPECT_LT(result.aggregate.live_replica_fraction, 1.0);
  // Conservation holds farm-wide.
  EXPECT_EQ(result.aggregate.completed_total +
                result.aggregate.failed_requests +
                result.aggregate.outstanding_at_end,
            result.aggregate.issued_requests);
  // Faulty farms are thread-invariant too.
  FarmConfig parallel = config;
  config.threads = 1;
  parallel.threads = 4;
  EXPECT_EQ(FarmJson(FarmSimulator(config).Run()),
            FarmJson(FarmSimulator(parallel).Run()));
}

TEST(Farm, PerBoxOutstandingConsistentWithAggregate) {
  // Regression: per-box outstanding areas used to integrate from t = 0 and
  // divide by the full clock while the aggregate clips at warm-up and
  // divides by the measured window, so the box numbers disagreed with the
  // aggregate whenever warmup_seconds > 0. Both now use the same
  // accounting, and the per-box means sum to the aggregate mean exactly.
  // The open model exercises this: outstanding varies over time, so the
  // pre-warm-up area actually differs from the steady-state area.
  FarmConfig config = BaseFarm(3, 60);
  config.per_jukebox.sim.workload.model = QueuingModel::kOpen;
  config.per_jukebox.sim.workload.mean_interarrival_seconds = 45;
  const FarmResult result = FarmSimulator(config).Run();
  ASSERT_GT(result.aggregate.mean_outstanding, 0.0);
  const double box_sum = std::accumulate(
      result.mean_outstanding_per_jukebox.begin(),
      result.mean_outstanding_per_jukebox.end(), 0.0);
  EXPECT_DOUBLE_EQ(box_sum, result.aggregate.mean_outstanding);
}

}  // namespace
}  // namespace tapejuke
