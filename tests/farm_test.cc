// Tests for the jukebox-farm simulator.

#include "core/farm.h"

#include <gtest/gtest.h>

#include <numeric>

namespace tapejuke {
namespace {

FarmConfig BaseFarm(int32_t boxes, int64_t total_queue) {
  FarmConfig config;
  config.num_jukeboxes = boxes;
  config.per_jukebox.algorithm =
      AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
  config.per_jukebox.sim.duration_seconds = 400'000;
  config.per_jukebox.sim.warmup_seconds = 40'000;
  config.per_jukebox.sim.workload.queue_length = total_queue;
  config.per_jukebox.sim.workload.seed = 77;
  return config;
}

TEST(FarmConfig, Validation) {
  FarmConfig config = BaseFarm(2, 60);
  EXPECT_TRUE(config.Validate().ok());
  config.num_jukeboxes = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(Farm, SingleBoxMatchesPlainSimulator) {
  FarmConfig config = BaseFarm(1, 60);
  const FarmResult farm = FarmSimulator(config).Run();
  const ExperimentResult plain =
      ExperimentRunner::Run(config.per_jukebox).value();
  // One box, same seed structure but a different request stream (the farm
  // interleaves a router draw); expect statistical agreement.
  EXPECT_NEAR(farm.aggregate.requests_per_minute /
                  plain.sim.requests_per_minute,
              1.0, 0.05);
}

TEST(Farm, ThroughputScalesWithBoxes) {
  // Fixed per-box load: total population scales with the farm.
  const FarmResult one = FarmSimulator(BaseFarm(1, 60)).Run();
  const FarmResult three = FarmSimulator(BaseFarm(3, 180)).Run();
  EXPECT_NEAR(three.aggregate.requests_per_minute /
                  one.aggregate.requests_per_minute,
              3.0, 0.25);
}

TEST(Farm, PopulationSplitsEvenly) {
  const FarmResult result = FarmSimulator(BaseFarm(4, 120)).Run();
  ASSERT_EQ(result.mean_outstanding_per_jukebox.size(), 4u);
  const double total = std::accumulate(
      result.mean_outstanding_per_jukebox.begin(),
      result.mean_outstanding_per_jukebox.end(), 0.0);
  EXPECT_NEAR(total, 120.0, 1.0);
  for (const double outstanding : result.mean_outstanding_per_jukebox) {
    EXPECT_NEAR(outstanding, 30.0, 4.0);  // migration noise, not pinned
  }
  // Work is shared: every box completed a fair share.
  for (const int64_t completions : result.completions_per_jukebox) {
    EXPECT_GT(completions,
              result.aggregate.completed_requests / 8);
  }
}

TEST(Farm, FixedSplitApproximationIsClose) {
  // §4.8 assumes a farm of n boxes at total population Q behaves like one
  // box at Q/n. Compare a real 3-box farm (population 180) against a
  // single box at queue 60.
  const FarmResult farm = FarmSimulator(BaseFarm(3, 180)).Run();
  FarmConfig single = BaseFarm(1, 60);
  const FarmResult approx = FarmSimulator(single).Run();
  const double per_box_thr = farm.aggregate.requests_per_minute / 3.0;
  EXPECT_NEAR(per_box_thr / approx.aggregate.requests_per_minute, 1.0,
              0.10);
}

TEST(Farm, OpenModelRoutesPoissonStream) {
  FarmConfig config = BaseFarm(2, 60);
  config.per_jukebox.sim.workload.model = QueuingModel::kOpen;
  config.per_jukebox.sim.workload.mean_interarrival_seconds = 40;
  const FarmResult result = FarmSimulator(config).Run();
  // Two boxes absorb a 1.5/min farm-wide stream.
  EXPECT_NEAR(result.aggregate.requests_per_minute, 1.5, 0.3);
}

TEST(Farm, Deterministic) {
  const FarmResult a = FarmSimulator(BaseFarm(2, 80)).Run();
  const FarmResult b = FarmSimulator(BaseFarm(2, 80)).Run();
  EXPECT_EQ(a.aggregate.completed_requests, b.aggregate.completed_requests);
  EXPECT_EQ(a.completions_per_jukebox, b.completions_per_jukebox);
}

}  // namespace
}  // namespace tapejuke
