// Cross-algorithm property suite: every scheduling algorithm, run under
// randomized workloads with the ValidatingScheduler armed, satisfies the
// scheduler contract — legal single-sweep execution order, reads matching
// real replicas on the chosen tape, and exact request conservation.

#include "sched/validating_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/experiment.h"

namespace tapejuke {
namespace {

using InvariantCase =
    std::tuple<std::string /*algorithm*/, int /*num_replicas*/,
               QueuingModel>;

class SchedulerInvariants : public ::testing::TestWithParam<InvariantCase> {
};

TEST_P(SchedulerInvariants, HoldUnderRandomWorkload) {
  const auto& [algorithm, num_replicas, model] = GetParam();

  JukeboxConfig jukebox_config;
  jukebox_config.num_tapes = 10;
  jukebox_config.block_size_mb = 16;
  Jukebox jukebox(jukebox_config);

  LayoutSpec layout;
  layout.num_replicas = num_replicas;
  layout.start_position = num_replicas == 0 ? 0.0 : 1.0;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();

  const AlgorithmSpec spec = AlgorithmSpec::Parse(algorithm).value();
  ValidatingScheduler scheduler(CreateScheduler(spec, &jukebox, &catalog),
                                &jukebox, &catalog);

  SimulationConfig sim_config;
  sim_config.duration_seconds = 150'000;
  sim_config.warmup_seconds = 0;
  sim_config.workload.model = model;
  sim_config.workload.queue_length = 50;
  sim_config.workload.mean_interarrival_seconds = 70;
  sim_config.workload.seed =
      static_cast<uint64_t>(num_replicas) * 131 + algorithm.size();
  Simulator sim(&jukebox, &catalog, &scheduler, sim_config);
  const SimulationResult result = sim.Run();

  // The ValidatingScheduler aborts on any contract violation; reaching
  // here means order/placement/uniqueness held. Check conservation too.
  EXPECT_GT(result.completed_requests, 50) << "simulation made no progress";
  EXPECT_EQ(scheduler.arrivals_seen(),
            scheduler.requests_served() + scheduler.outstanding());
  // The simulator's completion count matches the scheduler's served count
  // within the post-run residue (requests served == metric completions
  // because warmup is zero).
  EXPECT_EQ(scheduler.requests_served(), result.completed_requests);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SchedulerInvariants,
    ::testing::Combine(
        ::testing::Values("fifo", "static-round-robin",
                          "static-max-requests", "static-max-bandwidth",
                          "static-oldest-max-requests",
                          "static-oldest-max-bandwidth",
                          "dynamic-round-robin", "dynamic-max-requests",
                          "dynamic-max-bandwidth",
                          "dynamic-oldest-max-requests",
                          "dynamic-oldest-max-bandwidth",
                          "envelope-max-requests", "envelope-max-bandwidth",
                          "envelope-oldest-max-requests"),
        ::testing::Values(0, 3, 9),
        ::testing::Values(QueuingModel::kClosed, QueuingModel::kOpen)));

TEST(ValidatingScheduler, NamePrefixesInner) {
  JukeboxConfig config;
  config.num_tapes = 2;
  Jukebox jukebox(config);
  const Catalog catalog =
      LayoutBuilder::Build(&jukebox, LayoutSpec{}).value();
  ValidatingScheduler scheduler(
      CreateScheduler(AlgorithmSpec::Parse("fifo").value(), &jukebox,
                      &catalog),
      &jukebox, &catalog);
  EXPECT_EQ(scheduler.name(), "validated fifo");
}

TEST(ValidatingSchedulerDeathTest, DoubleEnqueueAborts) {
  JukeboxConfig config;
  config.num_tapes = 2;
  Jukebox jukebox(config);
  const Catalog catalog =
      LayoutBuilder::Build(&jukebox, LayoutSpec{}).value();
  ValidatingScheduler scheduler(
      CreateScheduler(AlgorithmSpec::Parse("fifo").value(), &jukebox,
                      &catalog),
      &jukebox, &catalog);
  scheduler.OnArrival(Request{1, 0, 0.0}, 0);
  EXPECT_DEATH(scheduler.OnArrival(Request{1, 5, 1.0}, 0),
               "enqueued twice");
}

}  // namespace
}  // namespace tapejuke
