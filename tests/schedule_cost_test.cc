// Unit tests for the schedule cost / effective bandwidth evaluator.

#include "sched/schedule_cost.h"

#include <gtest/gtest.h>

namespace tapejuke {
namespace {

class ScheduleCostTest : public ::testing::Test {
 protected:
  TimingModel model_{TimingParams::Exabyte8505XL()};
  ScheduleCost cost_{&model_, 16};
};

TEST_F(ScheduleCostTest, EmptyScheduleIsFree) {
  EXPECT_DOUBLE_EQ(cost_.ExecutionSeconds(0, {}), 0.0);
  const SweepCostBreakdown visit = cost_.EstimateVisit(0, 0, 0, {});
  EXPECT_DOUBLE_EQ(visit.TotalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(visit.BandwidthMBps(), 0.0);
}

TEST_F(ScheduleCostTest, SingleReadFromHead) {
  // Locate 0 -> 320 (long forward), read 16 MB with forward startup.
  const double expected =
      (14.342 + 0.028 * 320) + (0.38 + 1.77 * 16);
  EXPECT_DOUBLE_EQ(cost_.ExecutionSeconds(0, {320}), expected);
}

TEST_F(ScheduleCostTest, ConsecutiveBlocksStream) {
  // Two adjacent blocks: the second read needs no locate and no startup.
  const double expected = (14.342 + 0.028 * 320) + (0.38 + 1.77 * 16) +
                          (1.77 * 16);
  EXPECT_DOUBLE_EQ(cost_.ExecutionSeconds(0, {320, 336}), expected);
}

TEST_F(ScheduleCostTest, SweepOrderSplitsAroundHead) {
  const std::vector<Position> order =
      ScheduleCost::SweepOrder(100, {320, 16, 48, 100, 240});
  // Forward ascending from 100, then reverse descending below 100.
  const std::vector<Position> expected = {100, 240, 320, 48, 16};
  EXPECT_EQ(order, expected);
}

TEST_F(ScheduleCostTest, SweepOrderDeduplicates) {
  const std::vector<Position> order =
      ScheduleCost::SweepOrder(0, {32, 32, 16, 16});
  const std::vector<Position> expected = {16, 32};
  EXPECT_EQ(order, expected);
}

TEST_F(ScheduleCostTest, EstimateVisitSameTapeUsesHead) {
  const SweepCostBreakdown visit =
      cost_.EstimateVisit(/*target=*/2, /*mounted=*/2, /*head=*/100,
                          {100, 340});
  EXPECT_DOUBLE_EQ(visit.switch_seconds, 0.0);
  EXPECT_EQ(visit.blocks, 2);
  EXPECT_EQ(visit.bytes_mb, 32);
  // First block is at the head: read with no locate, no startup.
  const double expected = 1.77 * 16 +                    // read at 100
                          (14.342 + 0.028 * (340 - 116))  // locate
                          + (0.38 + 1.77 * 16);           // read at 340
  EXPECT_DOUBLE_EQ(visit.execution_seconds, expected);
}

TEST_F(ScheduleCostTest, EstimateVisitOtherTapePaysFullSwitch) {
  const SweepCostBreakdown visit =
      cost_.EstimateVisit(/*target=*/1, /*mounted=*/0, /*head=*/500, {64});
  EXPECT_DOUBLE_EQ(visit.switch_seconds, model_.FullSwitchTime(500));
  // Sweep starts from position 0 after the load.
  EXPECT_DOUBLE_EQ(visit.execution_seconds,
                   cost_.ExecutionSeconds(0, {64}));
}

TEST_F(ScheduleCostTest, EstimateVisitNoMountedTape) {
  const SweepCostBreakdown visit =
      cost_.EstimateVisit(1, kInvalidTape, 0, {64});
  EXPECT_DOUBLE_EQ(visit.switch_seconds, model_.SwitchTime());
}

TEST_F(ScheduleCostTest, BandwidthImprovesWithBatchSize) {
  // Amortization: servicing more blocks in one visit raises the effective
  // bandwidth (same switch overhead, shared locates).
  std::vector<Position> few = {1000};
  std::vector<Position> many;
  for (Position p = 1000; p < 1000 + 16 * 20; p += 16) many.push_back(p);
  const double bw_few =
      cost_.EstimateVisit(1, 0, 0, few).BandwidthMBps();
  const double bw_many =
      cost_.EstimateVisit(1, 0, 0, many).BandwidthMBps();
  EXPECT_GT(bw_many, bw_few);
}

TEST_F(ScheduleCostTest, NearbyBlocksBeatScatteredBlocks) {
  std::vector<Position> clustered = {1000, 1016, 1032, 1048};
  std::vector<Position> scattered = {0, 2000, 4000, 6000};
  const double bw_clustered =
      cost_.EstimateVisit(1, 0, 0, clustered).BandwidthMBps();
  const double bw_scattered =
      cost_.EstimateVisit(1, 0, 0, scattered).BandwidthMBps();
  EXPECT_GT(bw_clustered, bw_scattered);
}

}  // namespace
}  // namespace tapejuke
