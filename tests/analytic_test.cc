// Tests for the closed-form round-robin performance model.

#include "core/analytic.h"

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace tapejuke {
namespace {

AnalyticInputs BaseInputs() {
  AnalyticInputs inputs;
  inputs.jukebox.num_tapes = 10;
  inputs.jukebox.block_size_mb = 16;
  inputs.layout.hot_fraction = 0.10;
  inputs.hot_request_fraction = 0.40;
  inputs.queue_length = 60;
  return inputs;
}

TEST(AnalyticInputs, Validation) {
  AnalyticInputs inputs = BaseInputs();
  EXPECT_TRUE(inputs.Validate().ok());
  inputs.layout.num_replicas = 1;
  EXPECT_FALSE(inputs.Validate().ok());
  inputs = BaseInputs();
  inputs.queue_length = 0;
  EXPECT_FALSE(inputs.Validate().ok());
  inputs = BaseInputs();
  inputs.hot_request_fraction = 1.5;
  EXPECT_FALSE(inputs.Validate().ok());
}

TEST(ExpectedSweepSpan, GrowsWithBatchTowardCapacity) {
  const AnalyticInputs inputs = BaseInputs();
  const double span1 = ExpectedSweepSpanMb(inputs, 0, 1);
  const double span8 = ExpectedSweepSpanMb(inputs, 0, 8);
  const double span64 = ExpectedSweepSpanMb(inputs, 0, 64);
  EXPECT_LT(span1, span8);
  EXPECT_LT(span8, span64);
  EXPECT_LE(span64, 7168.0);
  // One draw: the expected block-end position; far from the tape end.
  EXPECT_LT(span1, 6000.0);
  // Many draws: the span approaches the full tape.
  EXPECT_GT(span64, 6800.0);
}

TEST(ExpectedSweepSpan, FrontLoadedSkewShortensTheSpan) {
  // Hot data at the beginning with high RH pulls the expected span down
  // relative to hot data at the end.
  AnalyticInputs front = BaseInputs();
  front.hot_request_fraction = 0.8;
  front.layout.start_position = 0.0;
  AnalyticInputs back = front;
  back.layout.start_position = 1.0;
  EXPECT_LT(ExpectedSweepSpanMb(front, 0, 4),
            ExpectedSweepSpanMb(back, 0, 4));
}

TEST(PredictRoundRobin, MatchesSimulationWithinTolerance) {
  for (const int64_t queue : {20L, 60L, 140L}) {
    AnalyticInputs inputs = BaseInputs();
    inputs.queue_length = queue;
    const AnalyticPrediction model = PredictRoundRobin(inputs).value();

    ExperimentConfig config;
    config.algorithm = AlgorithmSpec::Parse("static-round-robin").value();
    config.sim.duration_seconds = 800'000;
    config.sim.warmup_seconds = 80'000;
    config.sim.workload.queue_length = queue;
    config.sim.workload.seed = 5;
    const ExperimentResult sim = ExperimentRunner::Run(config).value();

    EXPECT_NEAR(model.throughput_req_per_min / sim.sim.requests_per_minute,
                1.0, 0.12)
        << "queue " << queue;
    EXPECT_NEAR(model.mean_delay_minutes / sim.sim.mean_delay_minutes, 1.0,
                0.12)
        << "queue " << queue;
  }
}

TEST(PredictRoundRobin, MoreLoadMoreThroughputAndDelay) {
  AnalyticInputs inputs = BaseInputs();
  inputs.queue_length = 20;
  const AnalyticPrediction light = PredictRoundRobin(inputs).value();
  inputs.queue_length = 140;
  const AnalyticPrediction heavy = PredictRoundRobin(inputs).value();
  EXPECT_GT(heavy.throughput_req_per_min, light.throughput_req_per_min);
  EXPECT_GT(heavy.mean_delay_minutes, light.mean_delay_minutes);
  EXPECT_GT(heavy.mean_batch_per_visit, light.mean_batch_per_visit);
}

TEST(PredictRoundRobin, LittleLawHolds) {
  const AnalyticInputs inputs = BaseInputs();
  const AnalyticPrediction model = PredictRoundRobin(inputs).value();
  // Q = X * R by construction.
  EXPECT_NEAR(model.throughput_req_per_min * model.mean_delay_minutes,
              static_cast<double>(inputs.queue_length), 1e-6);
}

TEST(PredictRoundRobin, UniformBatchApproximation) {
  // For the uniform horizontal case the fixed point lands near
  // b = 2Q / (T + 1).
  const AnalyticInputs inputs = BaseInputs();
  const AnalyticPrediction model = PredictRoundRobin(inputs).value();
  EXPECT_NEAR(model.mean_batch_per_visit, 2.0 * 60 / 11.0, 1.5);
}

TEST(PredictRoundRobin, FasterDriveFasterPrediction) {
  AnalyticInputs slow = BaseInputs();
  AnalyticInputs fast = BaseInputs();
  fast.jukebox.timing = TimingParams::FastDrive();
  const double slow_thr =
      PredictRoundRobin(slow).value().throughput_req_per_min;
  const double fast_thr =
      PredictRoundRobin(fast).value().throughput_req_per_min;
  EXPECT_GT(fast_thr, 2.0 * slow_thr);
}

}  // namespace
}  // namespace tapejuke
