// Batched-arrival and epoch-rescheduling boundary cases for the envelope
// scheduler: exact batch-boundary flushes, fault events forcing a flush
// mid-batch, background piggyback on batched/epoch client sweeps, and a
// scheduler-driven equivalence fuzz with every fast path armed at once.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "sched/envelope_scheduler.h"
#include "sched/validating_scheduler.h"
#include "test_util.h"
#include "util/rng.h"

namespace tapejuke {
namespace {

Request Req(RequestId id, BlockId block) {
  return Request{id, block, static_cast<double>(id)};
}

// Two tapes, four non-replicated blocks near the tape starts plus one
// replicated block; enough structure for envelopes without being fiddly.
class EnvelopeBatchTest : public ::testing::Test {
 protected:
  EnvelopeBatchTest() : rig_(2) {
    rig_.Place(0, 0, 0);
    rig_.Place(1, 0, 1);
    rig_.Place(2, 1, 0);
    rig_.Place(3, 1, 1);
    rig_.Place(4, 0, 3);  // replicated on both tapes
    rig_.Place(4, 1, 3);
    catalog_ = rig_.BuildCatalog();
    rig_.jukebox().SwitchTo(0);
  }

  EnvelopeScheduler MakeScheduler(const SchedulerOptions& options) {
    return EnvelopeScheduler(&rig_.jukebox(), &*catalog_,
                             TapePolicy::kMaxRequests, options);
  }

  TinyRig rig_;
  std::optional<Catalog> catalog_;
};

TEST_F(EnvelopeBatchTest, BatchFlushesExactlyWhenFull) {
  SchedulerOptions options;
  options.arrival_batch = 4;
  options.validate_envelope = true;
  EnvelopeScheduler sched = MakeScheduler(options);

  // The first batch_size - 1 arrivals stay staged: visible in
  // pending_size() and HasWork(), but not yet applied to the pending list.
  for (RequestId id = 0; id < 3; ++id) {
    sched.OnArrival(Req(id, static_cast<BlockId>(id)), 0);
  }
  EXPECT_EQ(sched.staged_size(), 3u);
  EXPECT_TRUE(sched.pending().empty());
  EXPECT_EQ(sched.pending_size(), 3u);
  EXPECT_TRUE(sched.HasWork());

  // The arrival that fills the batch flushes all of it through the normal
  // incremental path, in arrival order.
  sched.OnArrival(Req(3, 3), 0);
  EXPECT_EQ(sched.staged_size(), 0u);
  ASSERT_EQ(sched.pending().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sched.pending()[i].id, static_cast<RequestId>(i));
  }

  // The next arrival starts a new batch.
  sched.OnArrival(Req(4, 4), 0);
  EXPECT_EQ(sched.staged_size(), 1u);
  EXPECT_EQ(sched.pending_size(), 5u);

  // A major reschedule flushes the partial batch before deciding anything;
  // over the two sweeps every request is served exactly once.
  size_t served = 0;
  while (sched.HasWork()) {
    const TapeId tape = sched.MajorReschedule();
    ASSERT_NE(tape, kInvalidTape);
    EXPECT_EQ(sched.staged_size(), 0u);
    rig_.jukebox().SwitchTo(tape);
    while (auto entry = sched.PopNext()) served += entry->requests.size();
  }
  EXPECT_EQ(served, 5u);
}

TEST_F(EnvelopeBatchTest, DrainSweepAbsorbsStagedMidBatch) {
  SchedulerOptions options;
  options.arrival_batch = 8;
  options.validate_envelope = true;
  EnvelopeScheduler sched = MakeScheduler(options);

  for (RequestId id = 0; id < 2; ++id) {
    sched.OnArrival(Req(id, static_cast<BlockId>(id)), 0);
  }
  ASSERT_NE(sched.MajorReschedule(), kInvalidTape);

  // Two more arrivals land mid-sweep; the batch (8) is nowhere near full.
  sched.OnArrival(Req(2, 2), 0);
  sched.OnArrival(Req(3, 3), 0);
  EXPECT_EQ(sched.staged_size(), 2u);

  // A fault abandons the sweep. The staged arrivals must be absorbed into
  // the pending list (not lost, not applied to the dying sweep): the
  // persistent extension lists absorb them too, which the next oracle-
  // checked reschedule verifies.
  const std::vector<Request> drained = sched.DrainSweep();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(sched.staged_size(), 0u);
  EXPECT_EQ(sched.pending().size(), 2u);

  // Fail the drained requests back over, then serve everything.
  for (const Request& request : drained) sched.OnArrival(request, 0);
  size_t served = 0;
  while (sched.HasWork()) {
    const TapeId tape = sched.MajorReschedule();
    ASSERT_NE(tape, kInvalidTape);
    rig_.jukebox().SwitchTo(tape);
    while (auto entry = sched.PopNext()) served += entry->requests.size();
  }
  EXPECT_EQ(served, 4u);
}

TEST_F(EnvelopeBatchTest, EvictUnservableSeesStagedRequests) {
  SchedulerOptions options;
  options.arrival_batch = 8;
  options.validate_envelope = true;
  EnvelopeScheduler sched = MakeScheduler(options);

  sched.OnArrival(Req(0, 0), 0);  // survives on tape 0
  sched.OnArrival(Req(1, 2), 0);  // block 2 only lives on tape 1
  EXPECT_EQ(sched.staged_size(), 2u);

  // Block 2 loses its only replica while both requests are still staged.
  // Eviction must flush the batch first and return the now-unservable
  // request; the servable one stays pending.
  ASSERT_TRUE(catalog_->MarkReplicaDead(2, 1));
  const std::vector<Request> evicted = sched.EvictUnservablePending();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id, 1);
  EXPECT_EQ(sched.staged_size(), 0u);
  ASSERT_EQ(sched.pending().size(), 1u);
  EXPECT_EQ(sched.pending()[0].id, 0);

  // The catalog mutation bumped the generation: the next reschedule
  // rebuilds the persistent lists and still passes the oracle.
  const TapeId tape = sched.MajorReschedule();
  ASSERT_EQ(tape, 0);
  size_t served = 0;
  while (auto entry = sched.PopNext()) served += entry->requests.size();
  EXPECT_EQ(served, 1u);
  EXPECT_FALSE(sched.HasWork());
}

TEST_F(EnvelopeBatchTest, BackgroundPiggybacksOnEpochSweep) {
  SchedulerOptions options;
  options.arrival_batch = 2;
  options.reschedule_epoch = 3;
  options.validate_envelope = true;
  EnvelopeScheduler sched = MakeScheduler(options);

  // Client work on both tapes; a background (repair-source) read of block
  // 3 on tape 1. The background request must ride the *epoch* visit to
  // tape 1 — the one served from the reused envelope without re-running
  // the kernel.
  sched.OnArrival(Req(0, 0), 0);
  sched.OnArrival(Req(1, 1), 0);
  sched.OnArrival(Req(2, 2), 0);
  sched.EnqueueBackground(Req(kBackgroundIdBase, 3));
  ASSERT_EQ(sched.background_size(), 1u);

  // First visit: the full kernel runs; tape 0 wins max-requests (2 vs 1).
  const TapeId first = sched.MajorReschedule();
  ASSERT_EQ(first, 0);
  EXPECT_EQ(sched.counters().epoch_reuses, 0);
  EXPECT_EQ(sched.background_size(), 1u);  // no replica of 3 on tape 0
  rig_.jukebox().SwitchTo(first);
  while (sched.PopNext()) {
  }

  // Second visit: served from the persisted envelope (epoch reuse), and
  // the background read piggybacks on it.
  const TapeId second = sched.MajorReschedule();
  ASSERT_EQ(second, 1);
  EXPECT_EQ(sched.counters().epoch_reuses, 1);
  EXPECT_EQ(sched.background_size(), 0u);
  rig_.jukebox().SwitchTo(second);
  std::set<BlockId> blocks;
  while (auto entry = sched.PopNext()) blocks.insert(entry->block);
  EXPECT_TRUE(blocks.count(2));
  EXPECT_TRUE(blocks.count(3));
  EXPECT_FALSE(sched.HasWork());
}

// A catalog mutation mid-epoch (single-replica media error on another
// tape: the generation bumps, no sweep is drained, the victim block stays
// servable via its other replica) must not leave the epoch fast path
// reading the stale master cache: the dead replica would count as
// servable tape-1 work. The oracle cross-check pins the rebuilt read
// against the live pending x replica walk.
TEST(EnvelopeEpochFault, ReplicaDeathMidEpochRebuildsMasterCache) {
  TinyRig rig(2);
  rig.Place(0, 0, 0);
  rig.Place(1, 0, 1);
  rig.Place(2, 1, 0);
  rig.Place(3, 1, 1);  // block 3 also replicated on tape 0...
  rig.Place(3, 0, 3);  // ...outside the initial envelope
  Catalog catalog = rig.BuildCatalog();
  rig.jukebox().SwitchTo(0);

  SchedulerOptions options;
  options.reschedule_epoch = 3;
  options.validate_envelope = true;
  EnvelopeScheduler sched(&rig.jukebox(), &catalog, TapePolicy::kMaxRequests,
                          options);
  for (RequestId id = 0; id < 4; ++id) {
    sched.OnArrival(Req(id, static_cast<BlockId>(id)), 0);
  }

  // Full kernel: block 3 is assigned its cheap tape-1 replica, the
  // envelope covers two blocks on each tape, and the mounted tape wins
  // the 2-vs-2 tie.
  const TapeId first = sched.MajorReschedule();
  ASSERT_EQ(first, 0);
  rig.jukebox().SwitchTo(first);
  size_t served = 0;
  while (auto entry = sched.PopNext()) served += entry->requests.size();
  EXPECT_EQ(served, 2u);

  // Block 3's tape-1 replica dies mid-epoch. The request keeps its live
  // tape-0 replica, so nothing is evicted — only the generation stamp
  // tells the scheduler its cached tape-1 list is now a lie.
  ASSERT_TRUE(catalog.MarkReplicaDead(3, 1));
  EXPECT_TRUE(sched.EvictUnservablePending().empty());

  // The epoch visit still fires, but off a rebuilt cache: tape 1 has one
  // live in-envelope request (block 2), not two.
  const int64_t rebuilds_before = sched.counters().master_rebuilds;
  const TapeId second = sched.MajorReschedule();
  ASSERT_EQ(second, 1);
  EXPECT_EQ(sched.counters().master_rebuilds, rebuilds_before + 1);
  EXPECT_EQ(sched.counters().epoch_reuses, 1);
  rig.jukebox().SwitchTo(second);
  while (auto entry = sched.PopNext()) {
    EXPECT_EQ(entry->block, 2);
    served += entry->requests.size();
  }
  EXPECT_EQ(served, 3u);

  // Block 3 remains, reachable only through its out-of-envelope tape-0
  // replica: the epoch path finds no candidates and falls back to the
  // full kernel, which extends tape 0 out to it.
  const TapeId third = sched.MajorReschedule();
  ASSERT_EQ(third, 0);
  rig.jukebox().SwitchTo(third);
  while (auto entry = sched.PopNext()) {
    EXPECT_EQ(entry->block, 3);
    served += entry->requests.size();
  }
  EXPECT_EQ(served, 4u);
  EXPECT_FALSE(sched.HasWork());
}

// The abort flavour of the same staleness (production config, oracle
// off): every live tape-1 entry of the stale cache dies mid-epoch —
// the anchor block outright (and is evicted), the replicated blocks
// surviving on out-of-envelope tape-0 copies. Pre-generation-guard, the
// epoch visit chose tape 1 on the phantom candidates and the
// live-replica sweep extraction came back empty (TJ_CHECK failure); the
// guard makes the visit fall back to a full recompute instead.
TEST(EnvelopeEpochFault, AllPhantomTapeFallsBackToFullReschedule) {
  TinyRig rig(2);
  rig.Place(0, 0, 0);
  rig.Place(1, 0, 1);
  rig.Place(2, 0, 2);
  rig.Place(3, 1, 0);  // tape-1 anchor, non-replicated
  rig.Place(4, 1, 1);  // blocks 4 and 5 replicated on both tapes;
  rig.Place(4, 0, 4);  // the tape-0 copies sit outside the envelope
  rig.Place(5, 1, 2);
  rig.Place(5, 0, 5);
  Catalog catalog = rig.BuildCatalog();
  rig.jukebox().SwitchTo(0);

  SchedulerOptions options;
  options.reschedule_epoch = 3;
  EnvelopeScheduler sched(&rig.jukebox(), &catalog, TapePolicy::kMaxRequests,
                          options);
  for (RequestId id = 0; id < 6; ++id) {
    sched.OnArrival(Req(id, static_cast<BlockId>(id)), 0);
  }
  // Envelope: three blocks per tape; the mounted tape wins the 3-vs-3 tie.
  const TapeId first = sched.MajorReschedule();
  ASSERT_EQ(first, 0);
  rig.jukebox().SwitchTo(first);
  size_t served = 0;
  while (auto entry = sched.PopNext()) served += entry->requests.size();
  EXPECT_EQ(served, 3u);

  // A permanent tape-1 error kills all three in-envelope replicas. The
  // anchor block is lost (evicted); blocks 4 and 5 stay servable through
  // their tape-0 copies — which lie beyond the reused envelope.
  ASSERT_TRUE(catalog.MarkReplicaDead(3, 1));
  ASSERT_TRUE(catalog.MarkReplicaDead(4, 1));
  ASSERT_TRUE(catalog.MarkReplicaDead(5, 1));
  const std::vector<Request> evicted = sched.EvictUnservablePending();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id, 3);

  // Nothing pending lies inside the reused envelope any more: the visit
  // must recompute (no epoch reuse), extend tape 0, and serve both.
  const TapeId second = sched.MajorReschedule();
  ASSERT_EQ(second, 0);
  EXPECT_EQ(sched.counters().epoch_reuses, 0);
  EXPECT_EQ(sched.counters().major_reschedules, 2);
  rig.jukebox().SwitchTo(second);
  while (auto entry = sched.PopNext()) served += entry->requests.size();
  EXPECT_EQ(served, 5u);
  EXPECT_FALSE(sched.HasWork());
}

// Scheduler-driven equivalence fuzz: every fast path armed at once
// (selection heap, persistent extension lists, arrival batching, epoch
// rescheduling) under the ValidatingScheduler with the envelope oracle on.
// Arrival ids are shuffled within small windows to mimic failover
// re-deliveries, which drives the kernel's disordered-pending (hash-uid)
// path as well as the sorted fast path.
class EnvelopeBatchFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnvelopeBatchFuzz, BatchedFastPathsMatchOracle) {
  Rng rng(GetParam() * 977);
  TinyRig rig(4, /*capacity_mb=*/400, /*block_size_mb=*/16);
  std::set<std::pair<TapeId, int64_t>> used;
  auto place_random = [&](BlockId block, TapeId tape, int64_t lo,
                          int64_t hi) {
    for (;;) {
      const int64_t slot =
          lo + static_cast<int64_t>(
                   rng.UniformUint64(static_cast<uint64_t>(hi - lo)));
      if (used.insert({tape, slot}).second) {
        rig.Place(block, tape, slot);
        return;
      }
    }
  };
  BlockId next_block = 0;
  const int num_anchors = 1 + static_cast<int>(rng.UniformUint64(3));
  for (int i = 0; i < num_anchors; ++i) {
    place_random(next_block++, static_cast<TapeId>(rng.UniformUint64(4)), 0,
                 5);
  }
  const int num_replicated = 3 + static_cast<int>(rng.UniformUint64(5));
  for (int i = 0; i < num_replicated; ++i) {
    const int copies = 2 + static_cast<int>(rng.UniformUint64(3));
    std::set<TapeId> tapes;
    while (static_cast<int>(tapes.size()) < copies) {
      tapes.insert(static_cast<TapeId>(rng.UniformUint64(4)));
    }
    for (const TapeId t : tapes) place_random(next_block, t, 3, 25);
    ++next_block;
  }
  const Catalog catalog = rig.BuildCatalog();
  rig.jukebox().SwitchTo(static_cast<TapeId>(rng.UniformUint64(4)));

  SchedulerOptions options;
  options.validate_envelope = true;
  options.arrival_batch =
      1 + static_cast<int32_t>(rng.UniformUint64(4));  // 1-4
  options.reschedule_epoch =
      1 + static_cast<int32_t>(rng.UniformUint64(4));  // 1-4
  auto inner = std::make_unique<EnvelopeScheduler>(
      &rig.jukebox(), &catalog, TapePolicy::kMaxRequests, options);
  ValidatingScheduler sched(std::move(inner), &rig.jukebox(), &catalog);

  // 3 bursts of arrivals, each followed by a drain-everything phase.
  RequestId next_id = 0;
  int64_t delivered = 0;
  int64_t served = 0;
  for (int burst = 0; burst < 3; ++burst) {
    std::vector<Request> arrivals;
    const int n = 4 + static_cast<int>(rng.UniformUint64(8));
    for (int i = 0; i < n; ++i) {
      arrivals.push_back(Req(
          next_id++, static_cast<BlockId>(rng.UniformUint64(
                         static_cast<uint64_t>(next_block)))));
    }
    // Shuffle ids within windows of 3: out-of-order deliveries as after a
    // failover, without violating "enters exactly once".
    for (size_t i = 0; i + 2 < arrivals.size(); i += 3) {
      if (rng.UniformUint64(2) == 0) {
        std::swap(arrivals[i], arrivals[i + 2]);
      }
    }
    for (const Request& request : arrivals) sched.OnArrival(request, 0);
    delivered += n;

    while (sched.HasWork()) {
      const TapeId tape = sched.MajorReschedule();
      ASSERT_NE(tape, kInvalidTape);
      rig.jukebox().SwitchTo(tape);
      while (auto entry = sched.PopNext()) {
        served += static_cast<int64_t>(entry->requests.size());
      }
    }
  }
  EXPECT_EQ(sched.arrivals_seen(), delivered);
  EXPECT_EQ(sched.requests_served(), served);
  EXPECT_EQ(served, delivered);
  EXPECT_EQ(sched.outstanding(), 0);

  const auto& counters =
      static_cast<EnvelopeScheduler*>(sched.inner())->counters();
  EXPECT_GT(counters.major_reschedules, 0);
  if (options.reschedule_epoch > 1) {
    // Epoch visits were at least attempted; when they fired, the oracle
    // also checked the unrefreshed-cache candidate reads.
    EXPECT_GE(counters.epoch_reuses, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EnvelopeBatchFuzz,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace tapejuke
