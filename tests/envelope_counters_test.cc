// Tests for the envelope scheduler's behaviour counters, including the
// structural finding documented in EXPERIMENTS.md: with full replication
// at the tape ends, shrink and the multi-replica tie-break cannot fire.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "sched/envelope_scheduler.h"

namespace tapejuke {
namespace {

SimulationResult RunWithCounters(
    int32_t num_replicas, double start_position,
    EnvelopeScheduler::EnvelopeCounters* counters) {
  JukeboxConfig jukebox_config;
  Jukebox jukebox(jukebox_config);
  LayoutSpec layout;
  layout.num_replicas = num_replicas;
  layout.start_position = start_position;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();
  EnvelopeScheduler scheduler(&jukebox, &catalog,
                              TapePolicy::kMaxBandwidth);
  SimulationConfig sim_config;
  sim_config.duration_seconds = 400'000;
  sim_config.warmup_seconds = 40'000;
  sim_config.workload.queue_length = 60;
  sim_config.workload.seed = 21;
  Simulator sim(&jukebox, &catalog, &scheduler, sim_config);
  const SimulationResult result = sim.Run();
  *counters = scheduler.counters();
  return result;
}

TEST(EnvelopeCounters, FullReplicationAtEndsNeverShrinks) {
  EnvelopeScheduler::EnvelopeCounters counters;
  RunWithCounters(9, 1.0, &counters);
  EXPECT_GT(counters.major_reschedules, 100);
  EXPECT_GT(counters.extension_rounds, 100);
  EXPECT_GT(counters.incremental_inserts, 100);
  // The structural finding: cold-pinned envelopes never enclose two
  // replicas of one block when hot data sits at the tape ends.
  EXPECT_EQ(counters.shrink_moves, 0);
  EXPECT_EQ(counters.multi_replica_choices, 0);
  EXPECT_EQ(counters.sweep_trims, 0);
}

TEST(EnvelopeCounters, PartialReplicationAtEndsShrinks) {
  EnvelopeScheduler::EnvelopeCounters counters;
  RunWithCounters(3, 1.0, &counters);
  EXPECT_GT(counters.shrink_moves, 0);
  EXPECT_GT(counters.sweep_trims, 0);
}

TEST(EnvelopeCounters, ReplicationAtFrontAbsorbsInsteadOfExtending) {
  EnvelopeScheduler::EnvelopeCounters counters;
  RunWithCounters(9, 0.0, &counters);
  // Hot replicas in the cold-pinned prefix: step 2 absorbs them (facing
  // real multi-replica choices), so steps 3-5 have nothing to do.
  EXPECT_GT(counters.multi_replica_choices, 100);
  EXPECT_EQ(counters.extension_rounds, 0);
}

TEST(EnvelopeCounters, NoReplicationNeverExtendsOrChooses) {
  EnvelopeScheduler::EnvelopeCounters counters;
  RunWithCounters(0, 0.0, &counters);
  // Single-copy blocks: the initial envelope covers everything; the
  // algorithm degenerates to the dynamic scheduler (no global machinery).
  EXPECT_EQ(counters.extension_rounds, 0);
  EXPECT_EQ(counters.shrink_moves, 0);
  EXPECT_EQ(counters.multi_replica_choices, 0);
  EXPECT_GT(counters.incremental_inserts, 0);
}

}  // namespace
}  // namespace tapejuke
