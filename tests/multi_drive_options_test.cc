// Additional multi-drive tests: policies, insertion toggle, and edge
// geometries.

#include <gtest/gtest.h>

#include "layout/placement.h"
#include "sim/multi_drive.h"

namespace tapejuke {
namespace {

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;
  return config;
}

SimulationConfig ShortSim(int64_t queue) {
  SimulationConfig config;
  config.duration_seconds = 250'000;
  config.warmup_seconds = 25'000;
  config.workload.queue_length = queue;
  config.workload.seed = 123;
  return config;
}

SimulationResult RunWith(const MultiDriveConfig& drives, int64_t queue,
                         const LayoutSpec& layout = LayoutSpec{}) {
  Jukebox jukebox(PaperJukebox());
  const Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();
  MultiDriveSimulator sim(&jukebox, &catalog, drives, ShortSim(queue));
  return sim.Run();
}

TEST(MultiDriveOptions, DynamicInsertionHelps) {
  MultiDriveConfig with;
  with.num_drives = 2;
  with.dynamic_insertion = true;
  MultiDriveConfig without = with;
  without.dynamic_insertion = false;
  const SimulationResult a = RunWith(with, 120);
  const SimulationResult b = RunWith(without, 120);
  EXPECT_GT(a.requests_per_minute, b.requests_per_minute);
}

TEST(MultiDriveOptions, AllPoliciesMakeProgress) {
  for (const TapePolicy policy :
       {TapePolicy::kRoundRobin, TapePolicy::kMaxRequests,
        TapePolicy::kMaxBandwidth, TapePolicy::kOldestMaxRequests,
        TapePolicy::kOldestMaxBandwidth}) {
    MultiDriveConfig drives;
    drives.num_drives = 2;
    drives.policy = policy;
    const SimulationResult result = RunWith(drives, 60);
    EXPECT_GT(result.completed_requests, 500)
        << TapePolicyName(policy);
  }
}

TEST(MultiDriveOptions, AsManyDrivesAsTapesStillWorks) {
  JukeboxConfig config = PaperJukebox();
  config.num_tapes = 3;
  Jukebox jukebox(config);
  const Catalog catalog =
      LayoutBuilder::Build(&jukebox, LayoutSpec{}).value();
  MultiDriveConfig drives;
  drives.num_drives = 3;
  MultiDriveSimulator sim(&jukebox, &catalog, drives, ShortSim(30));
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 200);
}

TEST(MultiDriveOptions, TinyPopulationDoesNotDeadlock) {
  MultiDriveConfig drives;
  drives.num_drives = 4;
  const SimulationResult result = RunWith(drives, /*queue=*/2);
  // Fewer requests than drives: some drives idle, the rest serve.
  EXPECT_GT(result.completed_requests, 100);
  EXPECT_NEAR(result.mean_outstanding, 2.0, 0.1);
}

TEST(MultiDriveOptions, CountersAreConsistent) {
  MultiDriveConfig drives;
  drives.num_drives = 3;
  Jukebox jukebox(PaperJukebox());
  const Catalog catalog =
      LayoutBuilder::Build(&jukebox, LayoutSpec{}).value();
  MultiDriveSimulator sim(&jukebox, &catalog, drives, ShortSim(60));
  const SimulationResult result = sim.Run();
  EXPECT_EQ(result.counters.mb_read, result.counters.blocks_read * 16);
  // One read can satisfy several requests for the same block, so blocks
  // read is at most (and normally close to) the completion count.
  EXPECT_LE(result.counters.blocks_read, result.completed_requests);
  EXPECT_GT(result.counters.blocks_read,
            result.completed_requests * 9 / 10);
  // Three drives can be busy concurrently: accounted busy time may exceed
  // the wall clock of the measurement window.
  EXPECT_GT(result.counters.BusySeconds(), result.measured_seconds);
}

}  // namespace
}  // namespace tapejuke
