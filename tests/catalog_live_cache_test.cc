// Regression tests for the catalog's O(1) per-block live-replica cache:
// randomized kill / whole-tape-kill / resurrect sequences, with the cached
// HasLiveReplica / LiveReplicaCount answers checked after every operation
// against a from-scratch scan of the dead mask.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "layout/catalog.h"
#include "test_util.h"

namespace tapejuke {
namespace {

/// Scan-based oracle: counts live replicas of `block` via IsAlive on every
/// element of its span (the ground-truth dead bitmask), never the cache.
int64_t ScannedLiveCount(const Catalog& catalog, BlockId block) {
  int64_t live = 0;
  for (const Replica& r : catalog.ReplicasOf(block)) {
    if (catalog.IsAlive(r)) ++live;
  }
  return live;
}

void ExpectCacheMatchesScan(const Catalog& catalog) {
  int64_t total_dead = 0;
  for (BlockId b = 0; b < catalog.num_blocks(); ++b) {
    const int64_t scanned = ScannedLiveCount(catalog, b);
    EXPECT_EQ(catalog.LiveReplicaCount(b), scanned) << "block " << b;
    EXPECT_EQ(catalog.HasLiveReplica(b), scanned > 0) << "block " << b;
    total_dead +=
        static_cast<int64_t>(catalog.ReplicasOf(b).size()) - scanned;
  }
  EXPECT_EQ(catalog.dead_replicas(), total_dead);
  EXPECT_EQ(catalog.HasAnyLive(), total_dead < catalog.TotalCopies());
}

TEST(CatalogLiveCache, FaultFreeAnswersNeedNoMask) {
  TinyRig rig(/*num_tapes=*/3);
  rig.Place(0, 0, 0);
  rig.Place(0, 1, 1);
  rig.Place(1, 2, 0);
  const Catalog catalog = rig.BuildCatalog(/*num_hot=*/1);
  EXPECT_EQ(catalog.LiveReplicaCount(0), 2);
  EXPECT_EQ(catalog.LiveReplicaCount(1), 1);
  EXPECT_TRUE(catalog.HasLiveReplica(1));
  EXPECT_EQ(catalog.dead_replicas(), 0);
}

TEST(CatalogLiveCache, RepairReplicaRestoresTheCount) {
  TinyRig rig(/*num_tapes=*/3);
  rig.Place(0, 0, 0);
  rig.Place(0, 1, 1);
  Catalog catalog = rig.BuildCatalog();
  ASSERT_TRUE(catalog.MarkReplicaDead(0, 0));
  EXPECT_EQ(catalog.LiveReplicaCount(0), 1);
  // The rebuilt copy lands on tape 2 (tape 1 already holds one).
  catalog.RepairReplica(0, /*old_tape=*/0,
                        Replica{/*tape=*/2, /*slot=*/4, /*position=*/64});
  EXPECT_EQ(catalog.LiveReplicaCount(0), 2);
  EXPECT_EQ(catalog.dead_replicas(), 0);
  EXPECT_EQ(catalog.ReplicaOn(0, 0), nullptr)
      << "the dead copy's CSR entry was rewritten in place";
  ASSERT_NE(catalog.ReplicaOn(0, 2), nullptr);
  EXPECT_TRUE(catalog.IsAlive(*catalog.ReplicaOn(0, 2)));
}

TEST(CatalogLiveCache, MarkTapeDeadReportsNewlyMaskedBlocksOnly) {
  TinyRig rig(/*num_tapes=*/3);
  rig.Place(0, 0, 0);
  rig.Place(1, 0, 1);
  rig.Place(2, 0, 2);
  rig.Place(0, 1, 0);
  Catalog catalog = rig.BuildCatalog();
  // Block 1's copy on tape 0 dies first; the whole-tape loss then reports
  // only the other two (already-dead replicas are not re-masked).
  ASSERT_TRUE(catalog.MarkReplicaDead(1, 0));
  std::vector<BlockId> newly_masked;
  EXPECT_EQ(catalog.MarkTapeDead(0, &newly_masked), 2);
  std::sort(newly_masked.begin(), newly_masked.end());
  EXPECT_EQ(newly_masked, (std::vector<BlockId>{0, 2}));
  ExpectCacheMatchesScan(catalog);
}

TEST(CatalogLiveCache, RandomizedKillAndResurrectAgreesWithScan) {
  // 6 tapes x 10 slots, ~20 blocks with 1-3 copies each; 400 random
  // operations (region kill / whole-tape kill / repair-resurrect), the
  // cache checked against the scan oracle after every one.
  std::mt19937_64 rng(20260806);
  TinyRig rig(/*num_tapes=*/6);
  const int64_t kBlocks = 20;
  std::vector<std::set<TapeId>> tapes_of(kBlocks);
  std::vector<int64_t> next_slot(6, 0);
  for (BlockId b = 0; b < kBlocks; ++b) {
    const int copies = 1 + static_cast<int>(rng() % 3);
    for (int c = 0; c < copies; ++c) {
      const TapeId t = static_cast<TapeId>(rng() % 6);
      if (tapes_of[b].count(t) != 0 || next_slot[t] >= 10) continue;
      rig.Place(b, t, next_slot[t]++);
      tapes_of[b].insert(t);
    }
    if (tapes_of[b].empty()) {  // every draw collided: force one copy
      for (TapeId t = 0; t < 6; ++t) {
        if (next_slot[t] < 10) {
          rig.Place(b, t, next_slot[t]++);
          tapes_of[b].insert(t);
          break;
        }
      }
    }
  }
  Catalog catalog = rig.BuildCatalog(/*num_hot=*/4);

  for (int op = 0; op < 400; ++op) {
    const BlockId b = static_cast<BlockId>(rng() % kBlocks);
    switch (rng() % 4) {
      case 0: {  // region error on a (possibly absent / dead) replica
        const TapeId t = static_cast<TapeId>(rng() % 6);
        const bool was_live = catalog.LiveReplicaOn(b, t) != nullptr;
        EXPECT_EQ(catalog.MarkReplicaDead(b, t), was_live) << "op " << op;
        break;
      }
      case 1: {  // whole-tape loss
        const TapeId t = static_cast<TapeId>(rng() % 6);
        std::vector<BlockId> newly_masked;
        const int64_t before = catalog.dead_replicas();
        const int64_t masked = catalog.MarkTapeDead(t, &newly_masked);
        EXPECT_EQ(masked, catalog.dead_replicas() - before);
        EXPECT_EQ(static_cast<int64_t>(newly_masked.size()), masked);
        break;
      }
      default: {  // repair: resurrect one dead copy of b, if any
        const ReplicaSpan span = catalog.ReplicasOf(b);
        TapeId old_tape = kInvalidTape;
        std::set<TapeId> held;
        for (const Replica& r : span) {
          held.insert(r.tape);
          if (!catalog.IsAlive(r)) old_tape = r.tape;
        }
        if (old_tape == kInvalidTape) break;  // nothing dead to repair
        TapeId target = kInvalidTape;
        for (TapeId t = 0; t < 6; ++t) {
          if (held.count(t) == 0) {
            target = t;
            break;
          }
        }
        if (target == kInvalidTape) break;  // copies everywhere already
        const int64_t live_before = catalog.LiveReplicaCount(b);
        catalog.RepairReplica(
            b, old_tape,
            Replica{target, /*slot=*/static_cast<int64_t>(rng() % 10),
                    /*position=*/static_cast<Position>(rng() % 160)});
        EXPECT_EQ(catalog.LiveReplicaCount(b), live_before + 1);
        break;
      }
    }
    ExpectCacheMatchesScan(catalog);
  }
}

}  // namespace
}  // namespace tapejuke
