// Overload-subsystem tests above the unit level: arrival shaping
// (diurnal modulation, correlated bursts) and tenant-mix determinism,
// the retry-backoff draw discipline, the extended conservation identity
// under deadlines + admission control, and the results-JSON gating that
// keeps overload-free documents byte-identical to pre-overload builds.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/results_io.h"
#include "sim/fault_model.h"
#include "sim/multi_drive.h"
#include "sim/workload.h"

namespace tapejuke {
namespace {

struct Rig {
  Rig() : jukebox(MakeConfig()) {
    catalog.emplace(LayoutBuilder::Build(&jukebox, LayoutSpec{}).value());
  }
  static JukeboxConfig MakeConfig() {
    JukeboxConfig config;
    config.num_tapes = 10;
    config.block_size_mb = 16;
    return config;
  }
  Jukebox jukebox;
  std::optional<Catalog> catalog;
};

WorkloadConfig OpenWorkload(double gap, uint64_t seed) {
  WorkloadConfig config;
  config.model = QueuingModel::kOpen;
  config.mean_interarrival_seconds = gap;
  config.seed = seed;
  return config;
}

void AddMix(WorkloadConfig* config, bool with_deadlines) {
  TenantClassConfig premium;
  premium.weight = 0.2;
  premium.p99_slo_seconds = 2000;
  if (with_deadlines) premium.deadline_seconds = 3000;
  TenantClassConfig standard;
  standard.weight = 0.3;
  if (with_deadlines) standard.deadline_seconds = 9000;
  TenantClassConfig besteffort;
  besteffort.weight = 0.5;
  config->tenant_classes = {premium, standard, besteffort};
}

// -- arrival shaping ---------------------------------------------------------

TEST(ArrivalShaping, GapMatchesPlainInterarrivalWhenOff) {
  Rig rig;
  WorkloadGenerator shaped(&*rig.catalog, OpenWorkload(60, 7));
  WorkloadGenerator plain(&*rig.catalog, OpenWorkload(60, 7));
  double now = 0;
  for (int i = 0; i < 2000; ++i) {
    const double gap = shaped.NextArrivalGap(now);
    EXPECT_DOUBLE_EQ(gap, plain.NextInterarrival()) << "draw " << i;
    now += gap;
  }
}

TEST(ArrivalShaping, TenantMixDoesNotPerturbBlocksOrTiming) {
  Rig rig;
  WorkloadConfig mixed = OpenWorkload(60, 11);
  AddMix(&mixed, /*with_deadlines=*/true);
  WorkloadGenerator with_mix(&*rig.catalog, mixed);
  WorkloadGenerator without(&*rig.catalog, OpenWorkload(60, 11));
  double now = 0;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(with_mix.NextArrivalGap(now), without.NextInterarrival())
        << "draw " << i;
    const Request a = without.NextRequest(now);
    const Request b = with_mix.NextRequest(now);
    // The block / id sequence comes from the base stream and must be
    // untouched by the tenant draw (dedicated overload stream).
    EXPECT_EQ(a.block, b.block) << "draw " << i;
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.tenant, 0);
    EXPECT_DOUBLE_EQ(a.deadline, 0.0);
    ASSERT_LT(b.tenant, 3) << "draw " << i;
    const double cls_deadline =
        mixed.tenant_classes[b.tenant].deadline_seconds;
    if (cls_deadline > 0) {
      EXPECT_DOUBLE_EQ(b.deadline, now + cls_deadline) << "draw " << i;
    } else {
      EXPECT_DOUBLE_EQ(b.deadline, 0.0) << "draw " << i;
    }
    now += 60;
  }
}

TEST(ArrivalShaping, DiurnalModulationShiftsArrivalsIntoThePeak) {
  Rig rig;
  WorkloadConfig config = OpenWorkload(10, 5);
  config.diurnal_amplitude = 0.8;
  config.diurnal_period_seconds = 10'000;
  WorkloadGenerator generator(&*rig.catalog, config);
  int first_half = 0;
  int second_half = 0;
  double now = 0;
  while (true) {
    now += generator.NextArrivalGap(now);
    if (now >= config.diurnal_period_seconds) break;
    if (now < config.diurnal_period_seconds / 2) {
      ++first_half;  // sin > 0: rate above the mean
    } else {
      ++second_half;  // sin < 0: rate below the mean
    }
  }
  EXPECT_GT(first_half, second_half * 3 / 2)
      << first_half << " peak vs " << second_half << " trough arrivals";
}

TEST(ArrivalShaping, BurstsAddArrivalsAndStayDeterministic) {
  Rig rig;
  WorkloadConfig config = OpenWorkload(50, 13);
  config.burst_interval_seconds = 2000;
  config.burst_size = 10;
  config.burst_spread_seconds = 100;
  const double horizon = 50'000;
  auto count = [&](const WorkloadConfig& wc, std::vector<double>* gaps) {
    WorkloadGenerator generator(&*rig.catalog, wc);
    int n = 0;
    double now = 0;
    while (true) {
      const double gap = generator.NextArrivalGap(now);
      if (gaps != nullptr) gaps->push_back(gap);
      now += gap;
      if (now >= horizon) return n;
      ++n;
    }
  };
  std::vector<double> gaps_a;
  std::vector<double> gaps_b;
  const int bursty = count(config, &gaps_a);
  EXPECT_EQ(count(config, &gaps_b), bursty);
  EXPECT_EQ(gaps_a, gaps_b) << "burst process not deterministic";
  const int plain = count(OpenWorkload(50, 13), nullptr);
  // ~25 bursts of >= 1 extra arrival each on top of ~1000 base arrivals.
  EXPECT_GT(bursty, plain + 20);
}

// -- retry backoff -----------------------------------------------------------

TEST(RetryBackoff, ZeroBaseDrawsNothingAndReturnsZero) {
  FaultConfig config;
  config.drive_mtbf_seconds = 10'000;
  config.drive_mttr_seconds = 1000;
  FaultModel with_calls(config, /*workload_seed=*/3);
  FaultModel control(config, /*workload_seed=*/3);
  EXPECT_EQ(with_calls.NextRetryBackoff(0), 0.0);
  EXPECT_EQ(with_calls.NextRetryBackoff(7), 0.0);
  // The disabled path must not consume RNG: the streams stay in lockstep.
  EXPECT_DOUBLE_EQ(with_calls.NextRepairTime(), control.NextRepairTime());
}

TEST(RetryBackoff, DoublesWithAttemptAndCapsAtMax) {
  FaultConfig config;
  config.retry_backoff_base_seconds = 10;
  config.retry_backoff_max_seconds = 80;
  FaultModel model(config, 3);
  // Jitter keeps each wait in [w/2, w] for w = min(base * 2^attempt, max).
  for (int trial = 0; trial < 50; ++trial) {
    const double first = model.NextRetryBackoff(0);
    EXPECT_GE(first, 5.0);
    EXPECT_LE(first, 10.0);
    const double second = model.NextRetryBackoff(1);
    EXPECT_GE(second, 10.0);
    EXPECT_LE(second, 20.0);
    const double third = model.NextRetryBackoff(3);
    EXPECT_GE(third, 40.0);
    EXPECT_LE(third, 80.0);
    // Far past the cap (including exponents that would overflow a shift).
    const double capped = model.NextRetryBackoff(200);
    EXPECT_GE(capped, 40.0);
    EXPECT_LE(capped, 80.0);
  }
}

TEST(RetryBackoff, DeterministicPerSeed) {
  FaultConfig config;
  config.retry_backoff_base_seconds = 5;
  config.retry_backoff_max_seconds = 60;
  FaultModel a(config, 9);
  FaultModel b(config, 9);
  for (int attempt = 0; attempt < 20; ++attempt) {
    EXPECT_DOUBLE_EQ(a.NextRetryBackoff(attempt % 6),
                     b.NextRetryBackoff(attempt % 6));
  }
}

// -- conservation + JSON gating ---------------------------------------------

SimulationConfig OverloadSim() {
  SimulationConfig sim;
  sim.duration_seconds = 150'000;
  sim.warmup_seconds = 15'000;
  sim.workload = OpenWorkload(/*gap=*/20, /*seed=*/21);
  AddMix(&sim.workload, /*with_deadlines=*/true);
  sim.admission.policy = AdmissionPolicy::kAdaptive;
  return sim;
}

TEST(OverloadConservation, HoldsWithDeadlinesAndAdmission) {
  Rig rig;
  MultiDriveConfig drives;
  drives.num_drives = 2;
  MultiDriveSimulator simulator(&rig.jukebox, &*rig.catalog, drives,
                                OverloadSim());
  const SimulationResult result = simulator.Run();
  ASSERT_TRUE(result.overload_enabled);
  // Saturated open queue with short deadlines: both exits must fire.
  EXPECT_GT(result.expired_requests, 0);
  EXPECT_GT(result.shed_requests, 0);
  EXPECT_EQ(result.completed_total + result.failed_requests +
                result.expired_requests + result.shed_requests +
                result.outstanding_at_end,
            result.issued_requests);
  ASSERT_EQ(result.tenant_classes.size(), 3u);
  int64_t class_completed = 0;
  for (const TenantClassResult& cls : result.tenant_classes) {
    class_completed += cls.completed;
  }
  EXPECT_EQ(class_completed, result.completed_requests);
}

TEST(OverloadConservation, DeterministicAcrossRuns) {
  auto run = []() {
    Rig rig;
    MultiDriveConfig drives;
    drives.num_drives = 2;
    MultiDriveSimulator simulator(&rig.jukebox, &*rig.catalog, drives,
                                  OverloadSim());
    return simulator.Run();
  };
  const SimulationResult a = run();
  const SimulationResult b = run();
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.expired_requests, b.expired_requests);
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_DOUBLE_EQ(a.mean_delay_seconds, b.mean_delay_seconds);
}

std::string ToJson(const SimulationResult& result) {
  std::ostringstream out;
  JsonWriter w(&out);
  WriteJson(&w, result);
  return out.str();
}

TEST(OverloadJson, GatedOffForOverloadFreeRuns) {
  Rig rig;
  SimulationConfig sim;
  sim.duration_seconds = 60'000;
  sim.warmup_seconds = 6'000;
  sim.workload.model = QueuingModel::kClosed;
  sim.workload.queue_length = 20;
  MultiDriveConfig drives;
  drives.num_drives = 2;
  MultiDriveSimulator simulator(&rig.jukebox, &*rig.catalog, drives, sim);
  const std::string json = ToJson(simulator.Run());
  // No overload knob was set, so none of the new keys may appear: the
  // document must stay byte-identical to pre-overload builds.
  EXPECT_EQ(json.find("expired_requests"), std::string::npos);
  EXPECT_EQ(json.find("shed_requests"), std::string::npos);
  EXPECT_EQ(json.find("tenant_classes"), std::string::npos);

  std::ostringstream out;
  JsonWriter w(&out);
  WriteJson(&w, sim);
  EXPECT_EQ(out.str().find("admission"), std::string::npos);
}

TEST(OverloadJson, EmittedForOverloadRuns) {
  Rig rig;
  MultiDriveConfig drives;
  drives.num_drives = 2;
  const SimulationConfig sim = OverloadSim();
  MultiDriveSimulator simulator(&rig.jukebox, &*rig.catalog, drives, sim);
  const std::string json = ToJson(simulator.Run());
  EXPECT_NE(json.find("\"expired_requests\""), std::string::npos);
  EXPECT_NE(json.find("\"shed_requests\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant_classes\""), std::string::npos);

  std::ostringstream out;
  JsonWriter w(&out);
  WriteJson(&w, sim);
  EXPECT_NE(out.str().find("\"admission\""), std::string::npos);
  EXPECT_NE(out.str().find("\"adaptive\""), std::string::npos);
}

}  // namespace
}  // namespace tapejuke
