// Tests for the gradual-fill replica lifecycle (§4.8).

#include "sim/lifecycle.h"

#include <gtest/gtest.h>

#include "layout/placement.h"
#include "sched/envelope_scheduler.h"

namespace tapejuke {
namespace {

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;
  return config;
}

// Spare-capacity starting layout per the paper's recommendation: hot data
// on a dedicated tape, the other tapes only part-filled with cold data
// (spread, not packed), leaving free space at every tape's end for the
// replicas to come.
LayoutSpec SpareLayout(Jukebox* probe) {
  LayoutSpec replicated;
  replicated.layout = HotLayout::kVertical;
  replicated.num_replicas = 9;
  replicated.start_position = 1.0;
  LayoutSpec spare;
  spare.layout = HotLayout::kVertical;
  spare.logical_blocks_override =
      LayoutBuilder::MaxLogicalBlocks(*probe, replicated);
  return spare;
}

struct Rig {
  Rig() : jukebox(PaperJukebox()) {
    catalog.emplace(
        LayoutBuilder::Build(&jukebox, SpareLayout(&jukebox)).value());
    scheduler.emplace(&jukebox, &*catalog, TapePolicy::kMaxBandwidth);
  }
  Jukebox jukebox;
  std::optional<Catalog> catalog;
  std::optional<EnvelopeScheduler> scheduler;
};

SimulationConfig LongSim() {
  SimulationConfig config;
  config.duration_seconds = 1'500'000;
  config.warmup_seconds = 0;  // epochs cover the whole run
  config.workload.queue_length = 60;
  config.workload.seed = 51;
  return config;
}

TEST(LifecycleConfig, Validation) {
  LifecycleConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.fill_budget_seconds = -1;
  EXPECT_FALSE(config.Validate().ok());
  config = LifecycleConfig{};
  config.target_copies = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = LifecycleConfig{};
  config.num_epochs = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(Lifecycle, ReplicasFillAndPerformanceImproves) {
  Rig rig;
  LifecycleConfig lifecycle;
  lifecycle.num_epochs = 6;
  lifecycle.fill_budget_seconds = 240;
  LifecycleSimulator sim(&rig.jukebox, &*rig.catalog, &*rig.scheduler,
                         LongSim(), lifecycle);
  const std::vector<EpochStats> epochs = sim.Run();
  ASSERT_EQ(epochs.size(), 6u);

  // The fill fraction is monotone and reaches (near) completion.
  for (size_t e = 1; e < epochs.size(); ++e) {
    EXPECT_GE(epochs[e].fill_fraction, epochs[e - 1].fill_fraction);
  }
  EXPECT_GT(epochs.back().fill_fraction, 0.95);
  EXPECT_EQ(sim.replicas_written(), sim.fill_target());

  // Throughput in the final (fully replicated) epoch beats the first.
  EXPECT_GT(epochs.back().requests_per_minute,
            epochs.front().requests_per_minute);
}

TEST(Lifecycle, CatalogAndTapesStayConsistent) {
  Rig rig;
  LifecycleConfig lifecycle;
  lifecycle.fill_budget_seconds = 240;
  LifecycleSimulator sim(&rig.jukebox, &*rig.catalog, &*rig.scheduler,
                         LongSim(), lifecycle);
  sim.Run();
  // Every catalog replica matches the tape contents.
  for (BlockId b = 0; b < rig.catalog->num_blocks(); ++b) {
    for (const Replica& replica : rig.catalog->ReplicasOf(b)) {
      EXPECT_EQ(rig.jukebox.tape(replica.tape).BlockAtSlot(replica.slot), b);
    }
  }
  // Hot blocks reached the target copy count.
  for (BlockId b = 0; b < rig.catalog->num_hot_blocks(); ++b) {
    EXPECT_EQ(rig.catalog->ReplicasOf(b).size(), 10u);
  }
  // Cold blocks were never replicated.
  for (BlockId b = rig.catalog->num_hot_blocks();
       b < rig.catalog->num_blocks(); ++b) {
    EXPECT_EQ(rig.catalog->ReplicasOf(b).size(), 1u);
  }
}

TEST(Lifecycle, ZeroBudgetWritesNothingViaPiggyback) {
  Rig rig;
  LifecycleConfig lifecycle;
  lifecycle.fill_budget_seconds = 0;
  lifecycle.fill_on_idle = false;
  SimulationConfig sim_config = LongSim();
  sim_config.duration_seconds = 200'000;
  LifecycleSimulator sim(&rig.jukebox, &*rig.catalog, &*rig.scheduler,
                         sim_config, lifecycle);
  sim.Run();
  EXPECT_EQ(sim.replicas_written(), 0);
}

TEST(Catalog, AddReplicaExtendsBlock) {
  std::vector<std::vector<Replica>> replicas = {{{0, 0, 0}}};
  Catalog catalog(std::move(replicas), 1);
  catalog.AddReplica(0, Replica{1, 3, 48});
  EXPECT_EQ(catalog.ReplicasOf(0).size(), 2u);
  EXPECT_EQ(catalog.TotalCopies(), 2);
  ASSERT_NE(catalog.ReplicaOn(0, 1), nullptr);
  EXPECT_EQ(catalog.ReplicaOn(0, 1)->position, 48);
}

TEST(CatalogDeathTest, AddReplicaRejectsDuplicateTape) {
  std::vector<std::vector<Replica>> replicas = {{{0, 0, 0}}};
  Catalog catalog(std::move(replicas), 1);
  EXPECT_DEATH(catalog.AddReplica(0, Replica{0, 5, 80}), "already has");
}

}  // namespace
}  // namespace tapejuke
