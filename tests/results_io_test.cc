// Tests for the JSON results writer: escaping, number formatting, writer
// structure, and the experiment-type serializers.

#include "core/results_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace tapejuke {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("fifo"), "fifo");
  EXPECT_EQ(JsonEscape("max-bandwidth envelope"),
            "max-bandwidth envelope");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonDouble, ShortestRoundTrip) {
  EXPECT_EQ(JsonDouble(1.5), "1.5");
  EXPECT_EQ(JsonDouble(0.1), "0.1");
  EXPECT_DOUBLE_EQ(std::stod(JsonDouble(1.0 / 3.0)), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(std::stod(JsonDouble(12345.6789)), 12345.6789);
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonDouble(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, EmitsNestedStructure) {
  std::ostringstream os;
  JsonWriter w(&os);
  w.BeginObject();
  w.Field("name", "fig04");
  w.Field("threads", 8);
  w.Key("points");
  w.BeginArray();
  w.Value(1.5);
  w.Value(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"fig04\",\n"
            "  \"threads\": 8,\n"
            "  \"points\": [\n"
            "    1.5,\n"
            "    true,\n"
            "    null\n"
            "  ]\n"
            "}");
}

TEST(JsonWriter, EmptyContainersStayCompact) {
  std::ostringstream os;
  JsonWriter w(&os);
  w.BeginObject();
  w.Key("empty_array");
  w.BeginArray();
  w.EndArray();
  w.Key("empty_object");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"empty_array\": [],\n"
            "  \"empty_object\": {}\n"
            "}");
}

TEST(WriteJson, ExperimentConfigCarriesEveryKnob) {
  ExperimentConfig config;
  config.algorithm = AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  config.layout.num_replicas = 9;
  config.sim.workload.seed = 12345;
  std::ostringstream os;
  JsonWriter w(&os);
  WriteJson(&w, config);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"algorithm\": \"max-bandwidth envelope\""),
            std::string::npos);
  EXPECT_NE(json.find("\"num_replicas\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 12345"), std::string::npos);
  for (const char* key :
       {"jukebox", "layout", "sim", "workload", "hot_fraction",
        "queue_length", "duration_seconds", "rewind_before_eject"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\""), std::string::npos)
        << key;
  }
}

TEST(WriteJson, SimulationResultCarriesEveryMetric) {
  SimulationResult result;
  result.completed_requests = 77;
  result.requests_per_minute = 2.5;
  std::ostringstream os;
  JsonWriter w(&os);
  WriteJson(&w, result);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"completed_requests\": 77"), std::string::npos);
  EXPECT_NE(json.find("\"requests_per_minute\": 2.5"), std::string::npos);
  for (const char* key :
       {"throughput_mb_per_s", "mean_delay_seconds", "mean_delay_minutes",
        "p95_delay_seconds", "p99_delay_seconds", "tape_switches_per_hour",
        "counters"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\""), std::string::npos)
        << key;
  }
  // The time-in-state block appears only when accounting was collected.
  EXPECT_EQ(json.find("\"time_in_state\""), std::string::npos);
  EXPECT_EQ(json.find("\"drive_utilization\""), std::string::npos);
  result.drive_utilization = 0.5;
  result.time_in_state.resize(2);
  result.time_in_state[0][obs::DriveActivity::kReading] = 3.25;
  std::ostringstream os2;
  JsonWriter w2(&os2);
  WriteJson(&w2, result);
  const std::string with_states = os2.str();
  EXPECT_NE(with_states.find("\"drive_utilization\": 0.5"),
            std::string::npos);
  EXPECT_NE(with_states.find("\"time_in_state\""), std::string::npos);
  EXPECT_NE(with_states.find("\"reading\": 3.25"), std::string::npos);
  EXPECT_NE(with_states.find("\"down\": 0"), std::string::npos);
}

TEST(WriteJson, TableRoundTripsColumnsAndRows) {
  Table table({"name", "value"});
  table.AddRow({std::string("alpha"), 1.5});
  table.AddRow({std::string("beta"), int64_t{7}});
  std::ostringstream os;
  JsonWriter w(&os);
  WriteJson(&w, table);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"columns\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("1.5"), std::string::npos);
  EXPECT_NE(json.find("7"), std::string::npos);
}

TEST(WriteTextFile, CreatesParentDirectories) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tapejuke_results_io_test";
  std::filesystem::remove_all(dir);
  const std::filesystem::path path = dir / "nested" / "out.json";
  const Status status = WriteTextFile(path.string(), "{\"ok\": true}");
  ASSERT_TRUE(status.ok()) << status;
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "{\"ok\": true}");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tapejuke
