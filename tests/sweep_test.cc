// Unit tests for the Sweep service list (forward + reverse phases).

#include "sched/sweep.h"

#include <gtest/gtest.h>

namespace tapejuke {
namespace {

Request Req(RequestId id, BlockId block) { return Request{id, block, 0.0}; }

ServiceEntry Entry(Position position, BlockId block, RequestId request) {
  return ServiceEntry{position, block, {Req(request, block)}};
}

TEST(Sweep, StartsEmpty) {
  Sweep sweep;
  EXPECT_TRUE(sweep.empty());
  EXPECT_EQ(sweep.size(), 0u);
  EXPECT_FALSE(sweep.Pop().has_value());
}

TEST(Sweep, PopsForwardThenReverse) {
  Sweep sweep;
  sweep.AppendForward(Entry(100, 1, 1));
  sweep.AppendForward(Entry(200, 2, 2));
  sweep.AppendReverse(Entry(80, 3, 3));
  sweep.AppendReverse(Entry(40, 4, 4));
  EXPECT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep.phase(), Sweep::Phase::kForward);
  EXPECT_EQ(sweep.Pop()->position, 100);
  EXPECT_EQ(sweep.Pop()->position, 200);
  EXPECT_EQ(sweep.phase(), Sweep::Phase::kReverse);
  EXPECT_EQ(sweep.Pop()->position, 80);
  EXPECT_EQ(sweep.Pop()->position, 40);
  EXPECT_TRUE(sweep.empty());
}

TEST(SweepDeathTest, ForwardAppendMustAscend) {
  Sweep sweep;
  sweep.AppendForward(Entry(100, 1, 1));
  EXPECT_DEATH(sweep.AppendForward(Entry(50, 2, 2)), "ascending");
}

TEST(SweepDeathTest, ReverseAppendMustDescend) {
  Sweep sweep;
  sweep.AppendReverse(Entry(100, 1, 1));
  EXPECT_DEATH(sweep.AppendReverse(Entry(200, 2, 2)), "descending");
}

TEST(Sweep, InsertAheadInForwardPhase) {
  Sweep sweep;
  sweep.AppendForward(Entry(100, 1, 1));
  sweep.AppendForward(Entry(300, 3, 3));
  // Head at 50: 200 is ahead, inserts between the two entries.
  EXPECT_TRUE(sweep.InsertRequest(Req(9, 9), 200, 50, true));
  EXPECT_EQ(sweep.Pop()->position, 100);
  EXPECT_EQ(sweep.Pop()->position, 200);
  EXPECT_EQ(sweep.Pop()->position, 300);
}

TEST(Sweep, InsertBehindHeadGoesToReversePhase) {
  Sweep sweep;
  sweep.AppendForward(Entry(200, 1, 1));
  EXPECT_TRUE(sweep.InsertRequest(Req(9, 9), 100, 150, true));
  EXPECT_EQ(sweep.Pop()->position, 200);  // forward first
  EXPECT_EQ(sweep.Pop()->position, 100);  // then back down
}

TEST(Sweep, InsertBehindHeadRejectedWithoutReversePhase) {
  Sweep sweep;
  sweep.AppendForward(Entry(200, 1, 1));
  EXPECT_FALSE(sweep.InsertRequest(Req(9, 9), 100, 150, false));
  EXPECT_EQ(sweep.size(), 1u);
}

TEST(Sweep, InsertDuringReversePhaseOnlyBelowHead) {
  Sweep sweep;
  sweep.AppendReverse(Entry(300, 1, 1));
  sweep.AppendReverse(Entry(100, 2, 2));
  // Head at 400 moving down: 200 fits between, 350... also below head.
  EXPECT_TRUE(sweep.InsertRequest(Req(9, 9), 200, 400, true));
  // 500 is above the head: rejected in the reverse phase.
  EXPECT_FALSE(sweep.InsertRequest(Req(10, 10), 500, 400, true));
  EXPECT_EQ(sweep.Pop()->position, 300);
  EXPECT_EQ(sweep.Pop()->position, 200);
  EXPECT_EQ(sweep.Pop()->position, 100);
}

TEST(Sweep, InsertJoinsExistingBlockEntry) {
  Sweep sweep;
  sweep.AppendForward(Entry(100, 7, 1));
  // A second request for block 7 joins the same read, even if the position
  // test would fail (the read is already scheduled).
  EXPECT_TRUE(sweep.InsertRequest(Req(2, 7), 100, 150, false));
  const ServiceEntry entry = *sweep.Pop();
  EXPECT_EQ(entry.requests.size(), 2u);
}

TEST(Sweep, IsAheadMirrorsInsertability) {
  Sweep sweep;
  sweep.AppendForward(Entry(200, 1, 1));
  EXPECT_TRUE(sweep.IsAhead(250, 100, true));
  EXPECT_TRUE(sweep.IsAhead(50, 100, true));
  EXPECT_FALSE(sweep.IsAhead(50, 100, false));
  Sweep empty;
  EXPECT_FALSE(empty.IsAhead(50, 0, true));
}

TEST(Sweep, RemoveBlock) {
  Sweep sweep;
  sweep.AppendForward(Entry(100, 1, 1));
  sweep.AppendForward(Entry(200, 2, 2));
  sweep.AppendReverse(Entry(50, 3, 3));
  const auto removed = sweep.RemoveBlock(2);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->position, 200);
  EXPECT_EQ(sweep.size(), 2u);
  EXPECT_FALSE(sweep.RemoveBlock(99).has_value());
  EXPECT_TRUE(sweep.RemoveBlock(3).has_value());
}

TEST(Sweep, FindBlockSearchesBothPhases) {
  Sweep sweep;
  sweep.AppendForward(Entry(100, 1, 1));
  sweep.AppendReverse(Entry(50, 2, 2));
  ASSERT_NE(sweep.FindBlock(1), nullptr);
  ASSERT_NE(sweep.FindBlock(2), nullptr);
  EXPECT_EQ(sweep.FindBlock(3), nullptr);
}

TEST(Sweep, EntriesAndPositionsInExecutionOrder) {
  Sweep sweep;
  sweep.AppendForward(Entry(100, 1, 1));
  sweep.AppendForward(Entry(200, 2, 2));
  sweep.AppendReverse(Entry(50, 3, 3));
  const std::vector<Position> positions = sweep.Positions();
  ASSERT_EQ(positions.size(), 3u);
  EXPECT_EQ(positions[0], 100);
  EXPECT_EQ(positions[1], 200);
  EXPECT_EQ(positions[2], 50);
  EXPECT_EQ(sweep.Entries().size(), 3u);
}

TEST(Sweep, ClearEmptiesBothPhases) {
  Sweep sweep;
  sweep.AppendForward(Entry(100, 1, 1));
  sweep.AppendReverse(Entry(50, 2, 2));
  sweep.Clear();
  EXPECT_TRUE(sweep.empty());
}

}  // namespace
}  // namespace tapejuke
