// End-to-end fault-injection tests: dead-replica filtering in every
// scheduler, failover and degraded-mode behavior in the single- and
// multi-drive simulators, request conservation under randomized faults,
// thread-count invariance of fault counters, and the bit-identical
// fault-free guarantee.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/farm.h"
#include "core/results_io.h"
#include "core/sweep_runner.h"
#include "sim/multi_drive.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace tapejuke {
namespace {

std::string ToJson(const SimulationResult& result) {
  std::ostringstream os;
  JsonWriter w(&os);
  WriteJson(&w, result);
  return os.str();
}

std::string ToJson(const SimulationConfig& config) {
  std::ostringstream os;
  JsonWriter w(&os);
  WriteJson(&w, config);
  return os.str();
}

SimulationConfig ClosedSim(uint64_t seed, double duration = 150'000) {
  SimulationConfig sim;
  sim.duration_seconds = duration;
  sim.warmup_seconds = 0;
  sim.workload.model = QueuingModel::kClosed;
  sim.workload.queue_length = 40;
  sim.workload.seed = seed;
  return sim;
}

// --- Scheduler dead-replica filtering ------------------------------------

class DeadReplicaFiltering : public ::testing::TestWithParam<std::string> {};

TEST_P(DeadReplicaFiltering, MasksAreInvisibleToTheScheduler) {
  // Block 0 has copies on tapes 0 and 1; the tape-0 copy is masked dead.
  // Whatever the algorithm, the schedule must read the live copy.
  TinyRig rig(/*num_tapes=*/3);
  rig.Place(/*block=*/0, /*tape=*/0, /*slot=*/1);
  rig.Place(/*block=*/0, /*tape=*/1, /*slot=*/3);
  rig.Place(/*block=*/1, /*tape=*/0, /*slot=*/4);
  Catalog catalog = rig.BuildCatalog(/*num_hot=*/1);
  ASSERT_TRUE(catalog.MarkReplicaDead(0, 0));

  const AlgorithmSpec spec = AlgorithmSpec::Parse(GetParam()).value();
  const std::unique_ptr<Scheduler> scheduler =
      CreateScheduler(spec, &rig.jukebox(), &catalog);
  scheduler->OnArrival(Request{0, 0, 0.0}, 0);
  const TapeId tape = scheduler->MajorReschedule();
  EXPECT_EQ(tape, 1) << "the only live copy of block 0 is on tape 1";
  const std::optional<ServiceEntry> entry = scheduler->PopNext();
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->block, 0);
  EXPECT_EQ(entry->position, catalog.ReplicaOn(0, 1)->position);
}

TEST_P(DeadReplicaFiltering, EvictUnservablePendingPartitionsCorrectly) {
  TinyRig rig(/*num_tapes=*/2);
  rig.Place(0, 0, 1);
  rig.Place(1, 0, 3);
  rig.Place(1, 1, 2);
  Catalog catalog = rig.BuildCatalog(/*num_hot=*/0);

  const AlgorithmSpec spec = AlgorithmSpec::Parse(GetParam()).value();
  const std::unique_ptr<Scheduler> scheduler =
      CreateScheduler(spec, &rig.jukebox(), &catalog);
  scheduler->OnArrival(Request{0, 0, 0.0}, 0);
  scheduler->OnArrival(Request{1, 1, 1.0}, 0);
  // Tape 0 dies: block 0 (sole copy there) is lost, block 1 survives on
  // tape 1.
  ASSERT_GT(catalog.MarkTapeDead(0), 0);
  const std::vector<Request> evicted = scheduler->EvictUnservablePending();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].block, 0);
  // The survivor is still schedulable, on the surviving tape.
  EXPECT_TRUE(scheduler->HasWork());
  EXPECT_EQ(scheduler->MajorReschedule(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, DeadReplicaFiltering,
                         ::testing::Values("fifo", "static-max-bandwidth",
                                           "dynamic-max-bandwidth",
                                           "envelope-max-bandwidth"));

// --- Single-drive simulator ------------------------------------------------

ExperimentConfig FaultyExperiment(int num_replicas, uint64_t seed) {
  ExperimentConfig config;
  config.layout.num_replicas = num_replicas;
  config.layout.start_position = num_replicas == 0 ? 0.0 : 1.0;
  config.sim = ClosedSim(seed);
  config.sim.faults.permanent_media_error_prob = 1e-3;
  config.sim.faults.whole_tape_fraction = 0.2;
  config.sim.faults.transient_read_error_prob = 0.01;
  config.sim.faults.robot_fault_prob = 0.01;
  config.sim.faults.drive_mtbf_seconds = 50'000;
  config.sim.faults.drive_mttr_seconds = 1'000;
  config.algorithm = AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
  return config;
}

TEST(FaultInjection, FailoverOnPermanentMediaError) {
  const ExperimentConfig config = FaultyExperiment(/*num_replicas=*/2, 5);
  const ExperimentResult result = ExperimentRunner::Run(config).value();
  const SimulationResult& sim = result.sim;
  ASSERT_TRUE(sim.fault_injection);
  EXPECT_GT(sim.faults.permanent_media_errors, 0);
  EXPECT_GT(sim.faults.replicas_masked, 0);
  EXPECT_GT(sim.faults.transient_read_errors, 0);
  EXPECT_EQ(sim.faults.read_retries, sim.faults.transient_read_errors -
                                         sim.faults.reads_escalated);
  EXPECT_GT(sim.faults.drive_failures, 0);
  EXPECT_GT(sim.faults.drive_repair_seconds, 0);
  EXPECT_EQ(sim.completed_total + sim.failed_requests +
                sim.outstanding_at_end,
            sim.issued_requests);
  EXPECT_GT(sim.completed_total, 0);
}

TEST(FaultInjection, AllReplicasDeadFailsTheRequest) {
  // NR-0 with every permanent error destroying the whole tape: blocks die
  // for good and requests to them must complete with an error rather than
  // hang the closed loop.
  ExperimentConfig config = FaultyExperiment(/*num_replicas=*/0, 11);
  config.sim.faults.whole_tape_fraction = 1.0;
  config.sim.faults.permanent_media_error_prob = 5e-3;
  const SimulationResult sim = ExperimentRunner::Run(config).value().sim;
  ASSERT_TRUE(sim.fault_injection);
  EXPECT_GT(sim.faults.dead_tapes, 0);
  EXPECT_GT(sim.failed_requests, 0);
  EXPECT_LT(sim.availability, 1.0);
  EXPECT_EQ(sim.completed_total + sim.failed_requests +
                sim.outstanding_at_end,
            sim.issued_requests);
}

TEST(FaultInjection, ReplicationImprovesCompletionsUnderFaults) {
  // The PR's headline acceptance: at a nonzero permanent-media-error rate
  // a replicated layout completes strictly more requests than NR-0 —
  // replication is an availability mechanism, not just a seek optimizer.
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const SimulationResult nr0 =
        ExperimentRunner::Run(FaultyExperiment(0, seed)).value().sim;
    const SimulationResult nr2 =
        ExperimentRunner::Run(FaultyExperiment(2, seed)).value().sim;
    EXPECT_GT(nr2.completed_total, nr0.completed_total) << "seed " << seed;
    EXPECT_GE(nr2.availability, nr0.availability) << "seed " << seed;
  }
}

TEST(FaultInjection, ConservationFuzzAcrossSeedsAndModels) {
  // 20 seeds x {closed, open}: issued == completed + failed + outstanding
  // in every run (MetricsCollector::Finalize also TJ_CHECKs this).
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ExperimentConfig config =
        FaultyExperiment(/*num_replicas=*/1, seed * 977);
    config.sim.duration_seconds = 60'000;
    if (seed % 2 == 0) {
      config.sim.workload.model = QueuingModel::kOpen;
      config.sim.workload.mean_interarrival_seconds = 60;
    }
    const SimulationResult sim = ExperimentRunner::Run(config).value().sim;
    ASSERT_TRUE(sim.fault_injection);
    EXPECT_EQ(sim.completed_total + sim.failed_requests +
                  sim.outstanding_at_end,
              sim.issued_requests)
        << "seed " << seed;
    EXPECT_GT(sim.issued_requests, 0) << "seed " << seed;
  }
}

TEST(FaultInjection, DisabledFaultsAreBitIdenticalToFaultFree) {
  // The mutable-catalog constructor with all rates zero must reproduce the
  // fault-free run byte for byte, and serialize no fault fields at all.
  JukeboxConfig jukebox_config;
  Jukebox jukebox_a(jukebox_config);
  Jukebox jukebox_b(jukebox_config);
  LayoutSpec layout;
  layout.num_replicas = 2;
  layout.start_position = 1.0;
  const Catalog catalog_a =
      LayoutBuilder::Build(&jukebox_a, layout).value();
  Catalog catalog_b = LayoutBuilder::Build(&jukebox_b, layout).value();
  const AlgorithmSpec spec =
      AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  const std::unique_ptr<Scheduler> sched_a =
      CreateScheduler(spec, &jukebox_a, &catalog_a);
  const std::unique_ptr<Scheduler> sched_b =
      CreateScheduler(spec, &jukebox_b, &catalog_b);
  const SimulationConfig sim = ClosedSim(7);

  Simulator fault_free(&jukebox_a, &catalog_a, sched_a.get(), sim);
  Simulator disabled(&jukebox_b, &catalog_b, sched_b.get(), sim);
  const SimulationResult result_a = fault_free.Run();
  const SimulationResult result_b = disabled.Run();
  EXPECT_FALSE(result_b.fault_injection);
  EXPECT_EQ(ToJson(result_a), ToJson(result_b));
  EXPECT_EQ(ToJson(sim).find("faults"), std::string::npos)
      << "disabled fault config must not appear in serialized output";
}

TEST(FaultInjection, CountersAreThreadCountInvariant) {
  // The same faulty grid through the sweep runner at 1 and 8 threads must
  // produce byte-identical JSON — fault draws come from a per-run stream
  // seeded by the derived point seed, never from execution order.
  std::vector<ExperimentConfig> grid;
  for (int nr : {0, 2}) {
    ExperimentConfig config = FaultyExperiment(nr, 1);
    config.sim.duration_seconds = 60'000;
    grid.push_back(config);
  }
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 8;
  const auto a = SweepRunner(serial).Run(grid);
  const auto b = SweepRunner(parallel).Run(grid);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE((*a)[i].sim.faults == (*b)[i].sim.faults) << "point " << i;
    EXPECT_EQ(ToJson((*a)[i].sim), ToJson((*b)[i].sim)) << "point " << i;
  }
}

TEST(FaultInjectionDeathTest, ConstCatalogCtorRejectsEnabledFaults) {
  JukeboxConfig jukebox_config;
  Jukebox jukebox(jukebox_config);
  const Catalog catalog =
      LayoutBuilder::Build(&jukebox, LayoutSpec{}).value();
  const std::unique_ptr<Scheduler> scheduler = CreateScheduler(
      AlgorithmSpec::Parse("fifo").value(), &jukebox, &catalog);
  SimulationConfig sim = ClosedSim(1);
  sim.faults.permanent_media_error_prob = 0.01;
  EXPECT_DEATH(Simulator(&jukebox, &catalog, scheduler.get(), sim),
               "mutable-catalog");
}

// --- Multi-drive simulator -------------------------------------------------

TEST(MultiDriveFaults, FailoverAndConservation) {
  JukeboxConfig jukebox_config;
  Jukebox jukebox(jukebox_config);
  LayoutSpec layout;
  layout.num_replicas = 2;
  layout.start_position = 1.0;
  Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();
  MultiDriveConfig drives;
  drives.num_drives = 3;
  SimulationConfig sim = ClosedSim(13);
  sim.faults.permanent_media_error_prob = 1e-3;
  sim.faults.whole_tape_fraction = 0.2;
  sim.faults.transient_read_error_prob = 0.01;
  sim.faults.robot_fault_prob = 0.01;
  sim.faults.drive_mtbf_seconds = 20'000;
  sim.faults.drive_mttr_seconds = 2'000;

  MultiDriveSimulator simulator(&jukebox, &catalog, drives, sim);
  const SimulationResult result = simulator.Run();
  ASSERT_TRUE(result.fault_injection);
  EXPECT_GT(result.completed_total, 0);
  EXPECT_EQ(result.completed_total + result.failed_requests +
                result.outstanding_at_end,
            result.issued_requests);
  // Three drives with a 20k-second MTBF over a 150k-second run: failures
  // and repairs must both have happened, and voided work must have been
  // rerouted to the survivors.
  EXPECT_GT(result.faults.drive_failures, 0);
  EXPECT_GT(result.faults.drive_repair_seconds, 0);
  EXPECT_GT(result.faults.failovers, 0);
  EXPECT_GT(result.faults.transient_read_errors, 0);
}

TEST(MultiDriveFaults, DisabledFaultsAreBitIdenticalToFaultFree) {
  JukeboxConfig jukebox_config;
  LayoutSpec layout;
  layout.num_replicas = 1;
  const MultiDriveConfig drives;
  const SimulationConfig sim = ClosedSim(21);

  Jukebox jukebox_a(jukebox_config);
  const Catalog catalog_a =
      LayoutBuilder::Build(&jukebox_a, layout).value();
  MultiDriveSimulator fault_free(&jukebox_a, &catalog_a, drives, sim);
  const SimulationResult result_a = fault_free.Run();

  Jukebox jukebox_b(jukebox_config);
  Catalog catalog_b = LayoutBuilder::Build(&jukebox_b, layout).value();
  MultiDriveSimulator disabled(&jukebox_b, &catalog_b, drives, sim);
  const SimulationResult result_b = disabled.Run();

  EXPECT_FALSE(result_b.fault_injection);
  EXPECT_EQ(ToJson(result_a), ToJson(result_b));
}

TEST(MultiDriveFaultsDeathTest, ConstCatalogCtorRejectsEnabledFaults) {
  JukeboxConfig jukebox_config;
  Jukebox jukebox(jukebox_config);
  const Catalog catalog =
      LayoutBuilder::Build(&jukebox, LayoutSpec{}).value();
  SimulationConfig sim = ClosedSim(1);
  sim.faults.robot_fault_prob = 0.01;
  EXPECT_DEATH(
      MultiDriveSimulator(&jukebox, &catalog, MultiDriveConfig{}, sim),
      "mutable-catalog");
}

// --- Farm gating -----------------------------------------------------------

TEST(FaultGating, FarmConfigAcceptsFaultsButGatesRepairAndAlgorithms) {
  // The multi-drive-backed farm runs fault injection per box.
  FarmConfig farm;
  farm.per_jukebox.sim.faults.permanent_media_error_prob = 0.01;
  EXPECT_TRUE(farm.Validate().ok());

  // Multi-drive boxes dispatch by tape policy: envelope is rejected.
  FarmConfig envelope = farm;
  envelope.drives_per_jukebox = 2;
  envelope.per_jukebox.algorithm =
      AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  const Status bad_algorithm = envelope.Validate();
  ASSERT_FALSE(bad_algorithm.ok());
  EXPECT_NE(bad_algorithm.message().find("static"), std::string::npos);

  // Scrub/repair stays single-drive only.
  FarmConfig repair = farm;
  repair.drives_per_jukebox = 2;
  repair.per_jukebox.sim.repair.enable_repair = true;
  repair.per_jukebox.sim.repair.scrub_interval_seconds = 1000;
  const Status bad_repair = repair.Validate();
  ASSERT_FALSE(bad_repair.ok());
  EXPECT_NE(bad_repair.message().find("single-drive"), std::string::npos);
}

}  // namespace
}  // namespace tapejuke
