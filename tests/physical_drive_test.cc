// Reproduces the §2.1 model-validation protocol: ten random walks of 100
// locate+read steps against a noisy "physical" drive, comparing predicted
// and measured totals. The paper reports locate error max 0.6% / mean 0.5%
// and read error max 4.6% / mean 2.6%.

#include "tape/physical_drive.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tapejuke {
namespace {

class PhysicalDriveTest : public ::testing::Test {
 protected:
  TimingModel model_{TimingParams::Exabyte8505XL()};
};

TEST_F(PhysicalDriveTest, ZeroNoiseMatchesModelExactly) {
  DriveNoiseParams noise;
  noise.locate_rel_stddev = 0;
  noise.read_rel_stddev = 0;
  noise.locate_bias_stddev = 0;
  noise.read_bias_stddev = 0;
  PhysicalDrive drive(&model_, noise, /*seed=*/1);
  EXPECT_DOUBLE_EQ(drive.MeasureLocate(0, 100), model_.LocateTime(0, 100));
  EXPECT_DOUBLE_EQ(drive.MeasureRead(16, LocateKind::kForward),
                   model_.ReadTime(16, LocateKind::kForward));
  const RandomWalkResult walk = drive.RandomWalk(100, 16);
  EXPECT_DOUBLE_EQ(walk.LocateErrorPct(), 0.0);
  EXPECT_DOUBLE_EQ(walk.ReadErrorPct(), 0.0);
}

TEST_F(PhysicalDriveTest, MeasurementsArePositive) {
  PhysicalDrive drive(&model_, DriveNoiseParams{}, 2);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GT(drive.MeasureLocate(0, 500), 0.0);
    ASSERT_GT(drive.MeasureRead(16, LocateKind::kForward), 0.0);
  }
}

TEST_F(PhysicalDriveTest, TenRandomWalksMatchPaperErrorMagnitudes) {
  PhysicalDrive drive(&model_, DriveNoiseParams{}, 3);
  double max_locate_err = 0;
  double mean_locate_err = 0;
  double max_read_err = 0;
  double mean_read_err = 0;
  const int kWalks = 10;
  for (int i = 0; i < kWalks; ++i) {
    const RandomWalkResult walk = drive.RandomWalk(100, 16);
    max_locate_err = std::max(max_locate_err, walk.LocateErrorPct());
    mean_locate_err += walk.LocateErrorPct() / kWalks;
    max_read_err = std::max(max_read_err, walk.ReadErrorPct());
    mean_read_err += walk.ReadErrorPct() / kWalks;
  }
  // The paper's magnitudes: locate totals accurate to well under ~2%; read
  // totals noticeably noisier (the paper saw mean 2.6%, max 4.6%).
  EXPECT_LT(max_locate_err, 2.5);
  EXPECT_LT(mean_locate_err, 1.0);
  EXPECT_LT(max_read_err, 12.0);
  EXPECT_GT(max_read_err, 0.5);
  EXPECT_LT(mean_read_err, 6.0);
  EXPECT_GT(mean_read_err, 0.3);
}

TEST_F(PhysicalDriveTest, WalkTotalsScaleWithSteps) {
  PhysicalDrive drive(&model_, DriveNoiseParams{}, 4);
  const RandomWalkResult small = drive.RandomWalk(10, 16);
  const RandomWalkResult large = drive.RandomWalk(1000, 16);
  EXPECT_GT(large.predicted_locate_seconds,
            small.predicted_locate_seconds * 10);
  EXPECT_NEAR(large.predicted_read_seconds / 1000,
              small.predicted_read_seconds / 10,
              1.0);
}

TEST_F(PhysicalDriveTest, SameSeedIsDeterministic) {
  PhysicalDrive a(&model_, DriveNoiseParams{}, 7);
  PhysicalDrive b(&model_, DriveNoiseParams{}, 7);
  const RandomWalkResult wa = a.RandomWalk(50, 16);
  const RandomWalkResult wb = b.RandomWalk(50, 16);
  EXPECT_DOUBLE_EQ(wa.measured_locate_seconds, wb.measured_locate_seconds);
  EXPECT_DOUBLE_EQ(wa.measured_read_seconds, wb.measured_read_seconds);
}

TEST(RandomWalkResult, ErrorPctHandlesZeroPrediction) {
  RandomWalkResult r;
  EXPECT_DOUBLE_EQ(r.LocateErrorPct(), 0.0);
  EXPECT_DOUBLE_EQ(r.ReadErrorPct(), 0.0);
}

}  // namespace
}  // namespace tapejuke
