// Unit tests for the serpentine locate model (extension).

#include "tape/serpentine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace tapejuke {
namespace {

SerpentineParams SmallParams() {
  SerpentineParams p;
  p.num_tracks = 4;
  p.tape_capacity_mb = 400;  // 100 MB per track
  return p;
}

TEST(SerpentineParams, Validate) {
  EXPECT_TRUE(SerpentineParams{}.Validate().ok());
  SerpentineParams p = SmallParams();
  p.num_tracks = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.tape_capacity_mb = 401;  // not divisible by 4 tracks
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.read_per_mb = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(SerpentineModel, TrackGeometry) {
  SerpentineModel model(SmallParams());
  EXPECT_EQ(model.TrackLengthMb(), 100);
  EXPECT_EQ(model.TrackOf(0), 0);
  EXPECT_EQ(model.TrackOf(99), 0);
  EXPECT_EQ(model.TrackOf(100), 1);
  EXPECT_EQ(model.TrackOf(399), 3);
}

TEST(SerpentineModel, LongitudinalOffsetAlternatesDirection) {
  SerpentineModel model(SmallParams());
  // Even track: offset increases with position.
  EXPECT_EQ(model.LongitudinalOffset(0), 0);
  EXPECT_EQ(model.LongitudinalOffset(99), 99);
  // Odd track runs backward: position 100 is at the far end.
  EXPECT_EQ(model.LongitudinalOffset(100), 99);
  EXPECT_EQ(model.LongitudinalOffset(199), 0);
  // Track 2 forward again.
  EXPECT_EQ(model.LongitudinalOffset(200), 0);
}

TEST(SerpentineModel, AdjacentTrackNeighborsAreCheapDespiteLogicalDistance) {
  // Default geometry: 64 tracks x 112 MB.
  SerpentineModel model{SerpentineParams{}};
  const int64_t track = model.TrackLengthMb();
  // Positions track-1 and track are logically adjacent AND longitudinally
  // adjacent (the serpentine turn-around), so the locate is near-minimal.
  const double turnaround = model.LocateTime(track - 1, track);
  // Positions 0 and 2*track-1 are logically far apart but longitudinally 0
  // apart (same end, adjacent tracks): also cheap on serpentine.
  const double stacked = model.LocateTime(0, 2 * track - 1);
  // Position 0 to track-1 is a full-track longitudinal traverse: expensive.
  const double full_track = model.LocateTime(0, track - 1);
  EXPECT_LT(turnaround, full_track);
  EXPECT_LT(stacked, full_track);
}

TEST(SerpentineModel, LocateCostsComposeFromParams) {
  const SerpentineParams p = SmallParams();
  SerpentineModel model(p);
  EXPECT_DOUBLE_EQ(model.LocateTime(0, 0), 0.0);
  // Same track, 50 MB longitudinal travel.
  EXPECT_DOUBLE_EQ(model.LocateTime(0, 50),
                   p.startup_seconds + p.travel_per_mb * 50);
  // Cross-track adds the switch penalty.
  EXPECT_DOUBLE_EQ(model.LocateTime(0, 199),
                   p.startup_seconds + p.track_switch_seconds);
}

TEST(SerpentineModel, ReadTimeLinear) {
  SerpentineModel model(SmallParams());
  EXPECT_DOUBLE_EQ(model.ReadTime(0), 0.0);
  EXPECT_DOUBLE_EQ(model.ReadTime(16), 16 * SmallParams().read_per_mb);
}

TEST(SerpentineModel, LocateIsSymmetric) {
  SerpentineModel model(SmallParams());
  for (Position a : {0, 37, 150, 321}) {
    for (Position b : {5, 120, 250, 399}) {
      EXPECT_DOUBLE_EQ(model.LocateTime(a, b), model.LocateTime(b, a));
    }
  }
}

TEST(SerpentineModel, TourLocateSecondsSumsLegs) {
  SerpentineModel model(SmallParams());
  const std::vector<Position> tour = {50, 120, 10};
  EXPECT_DOUBLE_EQ(model.TourLocateSeconds(0, tour),
                   model.LocateTime(0, 50) + model.LocateTime(50, 120) +
                       model.LocateTime(120, 10));
  EXPECT_DOUBLE_EQ(model.TourLocateSeconds(0, {}), 0.0);
}

TEST(SerpentineNearestNeighbor, VisitsEveryPositionOnce) {
  SerpentineModel model{SerpentineParams{}};
  std::vector<Position> positions = {16, 3200, 480, 6400, 1024, 48};
  const std::vector<Position> tour =
      SerpentineNearestNeighborTour(model, 0, positions);
  ASSERT_EQ(tour.size(), positions.size());
  std::sort(positions.begin(), positions.end());
  std::vector<Position> sorted_tour = tour;
  std::sort(sorted_tour.begin(), sorted_tour.end());
  EXPECT_EQ(sorted_tour, positions);
}

TEST(SerpentineNearestNeighbor, BeatsSortedOrderOnAverage) {
  // The point of the serpentine "modification": sorted logical order is a
  // poor tour on serpentine geometry; nearest-neighbor over the serpentine
  // metric does strictly better on average.
  SerpentineModel model{SerpentineParams{}};
  Rng rng(97);
  double sorted_total = 0;
  double nn_total = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Position> positions;
    for (int i = 0; i < 12; ++i) {
      positions.push_back(static_cast<Position>(
          rng.UniformUint64(static_cast<uint64_t>(
              SerpentineParams{}.tape_capacity_mb))));
    }
    std::vector<Position> sorted = positions;
    std::sort(sorted.begin(), sorted.end());
    sorted_total += model.TourLocateSeconds(0, sorted);
    nn_total += model.TourLocateSeconds(
        0, SerpentineNearestNeighborTour(model, 0, positions));
  }
  EXPECT_LT(nn_total, 0.8 * sorted_total);
}

TEST(SerpentineNearestNeighbor, FirstHopIsTheCheapest) {
  SerpentineModel model{SerpentineParams{}};
  const std::vector<Position> positions = {5000, 100, 2500};
  const std::vector<Position> tour =
      SerpentineNearestNeighborTour(model, 0, positions);
  for (const Position p : positions) {
    EXPECT_LE(model.LocateTime(0, tour.front()), model.LocateTime(0, p));
  }
}

}  // namespace
}  // namespace tapejuke
