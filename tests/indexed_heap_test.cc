// Unit and randomized tests for the indexed max-heap used by the
// heap-backed candidate selection path.

#include "util/indexed_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace tapejuke {
namespace {

struct Score {
  double bw = 0.0;
};
struct ScoreLess {
  bool operator()(const Score& a, const Score& b) const { return a.bw < b.bw; }
};
using Heap = IndexedMaxHeap<Score, ScoreLess>;

TEST(IndexedHeap, TopTracksMaximum) {
  Heap h;
  h.Reset(8);
  h.Set(0, {1.0});
  h.Set(1, {5.0});
  h.Set(2, {3.0});
  EXPECT_EQ(h.TopKey(), 1u);
  EXPECT_DOUBLE_EQ(h.TopValue().bw, 5.0);
  EXPECT_EQ(h.size(), 3u);
}

TEST(IndexedHeap, UpdateMovesEntryBothDirections) {
  Heap h;
  h.Reset(4);
  h.Set(0, {1.0});
  h.Set(1, {2.0});
  h.Set(2, {3.0});
  h.Set(0, {10.0});  // sift up
  EXPECT_EQ(h.TopKey(), 0u);
  h.Set(0, {0.5});  // sift down
  EXPECT_EQ(h.TopKey(), 2u);
  EXPECT_EQ(h.size(), 3u);
}

TEST(IndexedHeap, RemoveArbitraryKey) {
  Heap h;
  h.Reset(8);
  for (size_t k = 0; k < 8; ++k) h.Set(k, {static_cast<double>(k)});
  h.Remove(7);  // remove the top
  EXPECT_EQ(h.TopKey(), 6u);
  h.Remove(3);  // remove an interior entry
  h.Remove(3);  // double-remove is a no-op
  EXPECT_FALSE(h.Contains(3));
  EXPECT_EQ(h.size(), 6u);
  // Drain and verify descending order of the survivors.
  std::vector<size_t> order;
  while (!h.empty()) order.push_back(h.Pop());
  EXPECT_EQ(order, (std::vector<size_t>{6, 5, 4, 2, 1, 0}));
}

TEST(IndexedHeap, ResetDropsEntries) {
  Heap h;
  h.Reset(4);
  h.Set(1, {9.0});
  h.Reset(4);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.Contains(1));
}

TEST(IndexedHeap, ValueOfReflectsLatestSet) {
  Heap h;
  h.Reset(2);
  h.Set(1, {4.0});
  h.Set(1, {6.0});
  EXPECT_DOUBLE_EQ(h.ValueOf(1).bw, 6.0);
}

TEST(IndexedHeap, RandomizedAgainstLinearScan) {
  Rng rng(99);
  constexpr size_t kKeys = 64;
  Heap h;
  h.Reset(kKeys);
  std::vector<bool> present(kKeys, false);
  std::vector<double> value(kKeys, 0.0);
  for (int step = 0; step < 20000; ++step) {
    const size_t key = rng.NextUint64() % kKeys;
    const uint64_t op = rng.NextUint64() % 3;
    if (op == 0) {
      const double v = static_cast<double>(rng.NextUint64() % 100000);
      h.Set(key, {v});
      present[key] = true;
      value[key] = v;
    } else if (op == 1) {
      h.Remove(key);
      present[key] = false;
    } else if (present[key]) {
      ASSERT_DOUBLE_EQ(h.ValueOf(key).bw, value[key]);
    }
    // The heap top must match a linear scan for the max value.
    double best = -1.0;
    size_t n = 0;
    for (size_t k = 0; k < kKeys; ++k) {
      if (!present[k]) continue;
      ++n;
      best = std::max(best, value[k]);
    }
    ASSERT_EQ(h.size(), n);
    if (n > 0) {
      ASSERT_TRUE(present[h.TopKey()]);
      ASSERT_DOUBLE_EQ(h.TopValue().bw, best);
    }
  }
}

}  // namespace
}  // namespace tapejuke
