// Tests for the shared sweep-construction helper.

#include "sched/sweep_builder.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tapejuke {
namespace {

Request Req(RequestId id, BlockId block) {
  return Request{id, block, static_cast<double>(id)};
}

class SweepBuilderTest : public ::testing::Test {
 protected:
  // Tape 0: blocks 0..4 at slots 0..4; block 5 at slot 8.
  // Tape 1: block 6 at slot 0; block 5 replicated at slot 2.
  SweepBuilderTest() : rig_(2) {
    for (BlockId b = 0; b < 5; ++b) rig_.Place(b, 0, b);
    rig_.Place(5, 0, 8);
    rig_.Place(6, 1, 0);
    rig_.Place(5, 1, 2);
    catalog_ = rig_.BuildCatalog();
  }

  TinyRig rig_;
  std::optional<Catalog> catalog_;
};

TEST_F(SweepBuilderTest, ExtractsOnlyChosenTape) {
  std::deque<Request> pending = {Req(1, 0), Req(2, 6), Req(3, 3)};
  Sweep sweep;
  ExtractSweepForTape(*catalog_, /*tape=*/0, /*start_head=*/0,
                      rig_.block_mb(), nullptr, &pending, &sweep);
  EXPECT_EQ(sweep.size(), 2u);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending.front().block, 6);
}

TEST_F(SweepBuilderTest, SplitsAroundStartHead) {
  std::deque<Request> pending = {Req(1, 0), Req(2, 4), Req(3, 2)};
  Sweep sweep;
  // Head at position 48 (slot 3): slot 4 forward; slots 0 and 2 reverse.
  ExtractSweepForTape(*catalog_, 0, /*start_head=*/48, rig_.block_mb(),
                      nullptr, &pending, &sweep);
  EXPECT_EQ(sweep.Pop()->position, 64);  // forward phase
  EXPECT_EQ(sweep.Pop()->position, 32);  // reverse, descending
  EXPECT_EQ(sweep.Pop()->position, 0);
}

TEST_F(SweepBuilderTest, EnvelopeLimitFilters) {
  std::deque<Request> pending = {Req(1, 0), Req(2, 5)};
  Sweep sweep;
  const Position limit = 64;  // covers slots 0..3 only
  ExtractSweepForTape(*catalog_, 0, 0, rig_.block_mb(), &limit, &pending,
                      &sweep);
  EXPECT_EQ(sweep.size(), 1u);   // block 0 only
  EXPECT_EQ(pending.size(), 1u);  // block 5 at slot 8 is outside
}

TEST_F(SweepBuilderTest, GroupsDuplicateBlocks) {
  std::deque<Request> pending = {Req(1, 2), Req(2, 2), Req(3, 2)};
  Sweep sweep;
  ExtractSweepForTape(*catalog_, 0, 0, rig_.block_mb(), nullptr, &pending,
                      &sweep);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_EQ(sweep.Pop()->requests.size(), 3u);
}

TEST_F(SweepBuilderTest, EmptyPendingYieldsEmptySweep) {
  std::deque<Request> pending;
  Sweep sweep;
  ExtractSweepForTape(*catalog_, 0, 0, rig_.block_mb(), nullptr, &pending,
                      &sweep);
  EXPECT_TRUE(sweep.empty());
}

TEST_F(SweepBuilderTest, ReplicatedBlockUsesChosenTapePosition) {
  std::deque<Request> pending = {Req(1, 5)};
  Sweep sweep;
  ExtractSweepForTape(*catalog_, 1, 0, rig_.block_mb(), nullptr, &pending,
                      &sweep);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_EQ(sweep.Pop()->position, 32);  // tape 1 copy at slot 2
}

TEST_F(SweepBuilderTest, PreservesPendingOrderOfLeftovers) {
  std::deque<Request> pending = {Req(3, 6), Req(1, 0), Req(2, 6)};
  Sweep sweep;
  ExtractSweepForTape(*catalog_, 0, 0, rig_.block_mb(), nullptr, &pending,
                      &sweep);
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].id, 3);
  EXPECT_EQ(pending[1].id, 2);
}

TEST(SweepBuilderDeathTest, RequiresEmptySweep) {
  TinyRig rig(1);
  rig.Place(0, 0, 0);
  const Catalog catalog = rig.BuildCatalog();
  std::deque<Request> pending = {Req(1, 0)};
  Sweep sweep;
  ExtractSweepForTape(catalog, 0, 0, rig.block_mb(), nullptr, &pending,
                      &sweep);
  std::deque<Request> more = {Req(2, 0)};
  EXPECT_DEATH(ExtractSweepForTape(catalog, 0, 0, rig.block_mb(), nullptr,
                                   &more, &sweep),
               "drained");
}

}  // namespace
}  // namespace tapejuke
