// Unit and statistical tests for the deterministic PRNG.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace tapejuke {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformUint64IsUnbiased) {
  Rng rng(13);
  // Draw mod-3 buckets and check they are even to ~1%.
  int counts[3] = {0, 0, 0};
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformUint64(3)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3, 0.01);
  }
}

TEST(Rng, UniformIntCoversEndpoints) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.contains(-2));
  EXPECT_TRUE(seen.contains(2));
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.4) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.4, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(60.0);
  EXPECT_NEAR(sum / n, 60.0, 1.0);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.Exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(31);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  // Child and parent streams should not be identical.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  uint64_t s1 = 0;
  uint64_t s2 = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  }
}

}  // namespace
}  // namespace tapejuke
