// Cross-feature interaction tests: the extensions compose with each other
// and with the paper's core machinery.

#include <gtest/gtest.h>

#include "core/farm.h"
#include "sched/envelope_scheduler.h"
#include "sched/greedy_scheduler.h"
#include "sched/validating_scheduler.h"
#include "sim/lifecycle.h"
#include "sim/trace.h"
#include "sim/write_path.h"

namespace tapejuke {
namespace {

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;
  return config;
}

TEST(CrossFeature, ZipfWorkloadOnFarm) {
  FarmConfig config;
  config.num_jukeboxes = 2;
  config.per_jukebox.sim.duration_seconds = 300'000;
  config.per_jukebox.sim.warmup_seconds = 30'000;
  config.per_jukebox.sim.workload.queue_length = 120;
  config.per_jukebox.sim.workload.skew = SkewModel::kZipf;
  config.per_jukebox.sim.workload.zipf_theta = 0.9;
  config.per_jukebox.sim.workload.seed = 31;
  const FarmResult result = FarmSimulator(config).Run();
  EXPECT_GT(result.aggregate.completed_requests, 1000);
  EXPECT_NEAR(result.aggregate.mean_outstanding, 120.0, 1.0);
}

TEST(CrossFeature, ThinkTimeWithWritePath) {
  Jukebox jukebox(PaperJukebox());
  const Catalog catalog =
      LayoutBuilder::Build(&jukebox, LayoutSpec{}).value();
  GreedyScheduler scheduler(&jukebox, &catalog, TapePolicy::kMaxBandwidth,
                            /*dynamic=*/true);
  SimulationConfig sim_config;
  sim_config.duration_seconds = 300'000;
  sim_config.warmup_seconds = 30'000;
  sim_config.workload.queue_length = 40;
  sim_config.workload.think_time_seconds = 300;
  sim_config.workload.seed = 37;
  WritePathConfig writes;
  writes.mean_write_interarrival_seconds = 200;
  WritebackSimulator sim(&jukebox, &catalog, &scheduler, sim_config,
                         writes);
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 500);
  EXPECT_GT(sim.stats().blocks_flushed, 0);
  EXPECT_LT(result.mean_outstanding, 40.0);  // some population thinks
}

TEST(CrossFeature, TraceReplayThroughEnvelopeWithReplication) {
  Jukebox probe(PaperJukebox());
  LayoutSpec layout;
  layout.num_replicas = 9;
  layout.start_position = 1.0;
  const Catalog catalog_probe =
      LayoutBuilder::Build(&probe, layout).value();
  WorkloadConfig workload;
  workload.mean_interarrival_seconds = 70;
  workload.seed = 41;
  const auto trace = SynthesizeTrace(catalog_probe, workload, 300'000);

  auto run = [&](const std::string& algorithm) {
    Jukebox jukebox(PaperJukebox());
    const Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();
    const auto scheduler = CreateScheduler(
        AlgorithmSpec::Parse(algorithm).value(), &jukebox, &catalog);
    SimulationConfig sim_config;
    sim_config.duration_seconds = 300'000;
    sim_config.warmup_seconds = 30'000;
    Simulator sim(&jukebox, &catalog, scheduler.get(), sim_config,
                  TraceToRequests(trace));
    return sim.Run();
  };
  // The same trace replayed through two schedulers: identical offered
  // load, so the delay comparison is perfectly paired.
  const SimulationResult dynamic = run("dynamic-max-bandwidth");
  const SimulationResult envelope = run("envelope-max-bandwidth");
  EXPECT_GT(dynamic.completed_requests, 1000);
  EXPECT_LE(envelope.mean_delay_seconds, dynamic.mean_delay_seconds);
}

TEST(CrossFeature, ValidatedEnvelopeUnderZipfAndReplication) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec layout;
  layout.num_replicas = 5;
  layout.start_position = 1.0;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, layout).value();
  ValidatingScheduler scheduler(
      std::make_unique<EnvelopeScheduler>(&jukebox, &catalog,
                                          TapePolicy::kMaxBandwidth),
      &jukebox, &catalog);
  SimulationConfig sim_config;
  sim_config.duration_seconds = 200'000;
  sim_config.warmup_seconds = 0;
  sim_config.workload.queue_length = 80;
  sim_config.workload.skew = SkewModel::kZipf;
  sim_config.workload.zipf_theta = 1.0;
  sim_config.workload.seed = 43;
  Simulator sim(&jukebox, &catalog, &scheduler, sim_config);
  const SimulationResult result = sim.Run();
  EXPECT_EQ(scheduler.arrivals_seen(),
            scheduler.requests_served() + scheduler.outstanding());
  EXPECT_EQ(scheduler.requests_served(), result.completed_requests);
}

TEST(CrossFeature, MultiTapeVerticalLifecycleFill) {
  // PH-20: two dedicated hot tapes; the lifecycle filler still converges.
  Jukebox jukebox(PaperJukebox());
  LayoutSpec replicated;
  replicated.hot_fraction = 0.20;
  replicated.layout = HotLayout::kVertical;
  replicated.num_replicas = 4;
  replicated.start_position = 1.0;
  LayoutSpec spare;
  spare.hot_fraction = 0.20;
  spare.layout = HotLayout::kVertical;
  spare.logical_blocks_override =
      LayoutBuilder::MaxLogicalBlocks(jukebox, replicated);
  Catalog catalog = LayoutBuilder::Build(&jukebox, spare).value();
  EnvelopeScheduler scheduler(&jukebox, &catalog,
                              TapePolicy::kMaxBandwidth);
  SimulationConfig sim_config;
  sim_config.duration_seconds = 1'200'000;
  sim_config.warmup_seconds = 0;
  sim_config.workload.queue_length = 60;
  sim_config.workload.seed = 47;
  LifecycleConfig lifecycle;
  lifecycle.target_copies = 5;
  lifecycle.fill_budget_seconds = 240;
  LifecycleSimulator sim(&jukebox, &catalog, &scheduler, sim_config,
                         lifecycle);
  sim.Run();
  EXPECT_EQ(sim.replicas_written(), sim.fill_target());
  for (BlockId b = 0; b < catalog.num_hot_blocks(); ++b) {
    EXPECT_EQ(catalog.ReplicasOf(b).size(), 5u);
  }
}

}  // namespace
}  // namespace tapejuke
