// Trace recorder end-to-end: schema shape of the emitted Chrome trace,
// span pairing, sampling, determinism, and the invariant that tracing
// never changes results output.

#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/results_io.h"
#include "layout/placement.h"
#include "sched/greedy_scheduler.h"
#include "sim/multi_drive.h"
#include "sim/simulator.h"
#include "util/json.h"

namespace tapejuke {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int64_t CountOccurrences(const std::string& text, const std::string& sub) {
  int64_t count = 0;
  for (size_t pos = text.find(sub); pos != std::string::npos;
       pos = text.find(sub, pos + sub.size())) {
    ++count;
  }
  return count;
}

std::string ResultJson(const SimulationResult& result) {
  std::ostringstream out;
  JsonWriter w(&out);
  WriteJson(&w, result);
  return out.str();
}

struct Rig {
  Rig(const JukeboxConfig& jb_config, const LayoutSpec& layout)
      : jukebox(jb_config),
        catalog(LayoutBuilder::Build(&jukebox, layout).value()) {}

  Jukebox jukebox;
  Catalog catalog;
};

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;
  return config;
}

SimulationConfig ShortSim() {
  SimulationConfig config;
  config.duration_seconds = 100'000;
  config.warmup_seconds = 10'000;
  config.workload.model = QueuingModel::kClosed;
  config.workload.queue_length = 30;
  config.workload.seed = 29;
  return config;
}

SimulationResult RunTraced(const obs::TraceConfig& obs_config) {
  Rig rig(PaperJukebox(), LayoutSpec{});
  GreedyScheduler scheduler(&rig.jukebox, &rig.catalog,
                            TapePolicy::kMaxBandwidth, /*dynamic=*/true);
  SimulationConfig config = ShortSim();
  config.obs = obs_config;
  Simulator sim(&rig.jukebox, &rig.catalog, &scheduler, config);
  return sim.Run();
}

TEST(ObsTrace, WritesBalancedSchemaValidTrace) {
  const std::string dir = ::testing::TempDir();
  obs::TraceConfig obs_config;
  obs_config.trace_out = dir + "obs_trace_schema.json";
  obs_config.decision_log = dir + "obs_trace_schema.jsonl";
  const SimulationResult result = RunTraced(obs_config);
  EXPECT_GT(result.completed_requests, 0);

  const std::string trace = ReadFile(obs_config.trace_out);
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Topology metadata: the process plus the drive/scheduler/request
  // threads.
  EXPECT_NE(trace.find("\"name\":\"jukebox\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"drive 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"scheduler\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"requests\""), std::string::npos);
  // Drive-state slices and scheduler decisions are present.
  EXPECT_GT(CountOccurrences(trace, "\"ph\":\"X\""), 0);
  EXPECT_NE(trace.find("\"name\":\"reading\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"locating\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"reschedule\""), std::string::npos);
  // Every opened request span is closed.
  const int64_t begins = CountOccurrences(trace, "\"ph\":\"b\"");
  const int64_t ends = CountOccurrences(trace, "\"ph\":\"e\"");
  EXPECT_GT(begins, 0);
  EXPECT_EQ(begins, ends);
  // Scheduled-into-sweep instants ride on the request spans.
  EXPECT_GT(CountOccurrences(trace, "\"name\":\"scheduled\""), 0);

  const std::string decisions = ReadFile(obs_config.decision_log);
  EXPECT_GT(CountOccurrences(decisions, "\"chosen\":"), 0);
  EXPECT_GT(CountOccurrences(decisions, "\"candidates\":["), 0);
  EXPECT_NE(decisions.find("\"scheduler\":\"dynamic max-bandwidth\""),
            std::string::npos);
}

TEST(ObsTrace, ByteIdenticalAcrossRuns) {
  const std::string dir = ::testing::TempDir();
  obs::TraceConfig first;
  first.trace_out = dir + "obs_trace_det_a.json";
  first.decision_log = dir + "obs_trace_det_a.jsonl";
  obs::TraceConfig second;
  second.trace_out = dir + "obs_trace_det_b.json";
  second.decision_log = dir + "obs_trace_det_b.jsonl";
  RunTraced(first);
  RunTraced(second);
  EXPECT_EQ(ReadFile(first.trace_out), ReadFile(second.trace_out));
  EXPECT_EQ(ReadFile(first.decision_log), ReadFile(second.decision_log));
}

TEST(ObsTrace, TracingNeverChangesResults) {
  const SimulationResult untraced = RunTraced(obs::TraceConfig{});
  obs::TraceConfig obs_config;
  obs_config.trace_out = ::testing::TempDir() + "obs_trace_inert.json";
  obs_config.decision_log = ::testing::TempDir() + "obs_trace_inert.jsonl";
  const SimulationResult traced = RunTraced(obs_config);
  // The whole results document, byte for byte — tracing only observes.
  EXPECT_EQ(ResultJson(untraced), ResultJson(traced));
}

TEST(ObsTrace, SamplingThinsRequestSpansOnly) {
  const std::string dir = ::testing::TempDir();
  obs::TraceConfig dense;
  dense.trace_out = dir + "obs_trace_dense.json";
  obs::TraceConfig sparse;
  sparse.trace_out = dir + "obs_trace_sparse.json";
  sparse.sample = 8;
  const SimulationResult dense_result = RunTraced(dense);
  const SimulationResult sparse_result = RunTraced(sparse);
  EXPECT_EQ(ResultJson(dense_result), ResultJson(sparse_result));
  const std::string dense_trace = ReadFile(dense.trace_out);
  const std::string sparse_trace = ReadFile(sparse.trace_out);
  const int64_t dense_begins = CountOccurrences(dense_trace, "\"ph\":\"b\"");
  const int64_t sparse_begins =
      CountOccurrences(sparse_trace, "\"ph\":\"b\"");
  EXPECT_GT(dense_begins, sparse_begins);
  EXPECT_GT(sparse_begins, 0);
  EXPECT_EQ(sparse_begins,
            CountOccurrences(sparse_trace, "\"ph\":\"e\""));
  // Drive-state slices are never sampled away.
  EXPECT_EQ(CountOccurrences(dense_trace, "\"ph\":\"X\""),
            CountOccurrences(sparse_trace, "\"ph\":\"X\""));
}

TEST(ObsTrace, MultiDriveTraceCoversEveryDrive) {
  const std::string dir = ::testing::TempDir();
  obs::TraceConfig obs_config;
  obs_config.trace_out = dir + "obs_trace_multi.json";
  obs_config.decision_log = dir + "obs_trace_multi.jsonl";
  Rig rig(PaperJukebox(), LayoutSpec{});
  MultiDriveConfig drives;
  drives.num_drives = 3;
  SimulationConfig config = ShortSim();
  config.obs = obs_config;
  MultiDriveSimulator sim(&rig.jukebox, &rig.catalog, drives, config);
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 0);
  const std::string trace = ReadFile(obs_config.trace_out);
  EXPECT_NE(trace.find("\"name\":\"drive 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"drive 1\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"drive 2\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(trace, "\"ph\":\"b\""),
            CountOccurrences(trace, "\"ph\":\"e\""));
  // Robot contention is visible as robot-state slices.
  EXPECT_NE(trace.find("\"name\":\"robot\""), std::string::npos);
  const std::string decisions = ReadFile(obs_config.decision_log);
  EXPECT_GT(CountOccurrences(decisions, "\"scheduler\":\"multi-drive"), 0);
}

// --- recorder unit behaviour ------------------------------------------

TEST(TraceRecorder, ClosesOpenSpansAtFinalize) {
  obs::TraceConfig config;
  config.trace_out = ::testing::TempDir() + "obs_recorder_unit.json";
  obs::TraceRecorder recorder(config);
  recorder.SetTopology("jukebox", 1);
  recorder.RequestArrived(1, /*block=*/7, /*background=*/false, 10.0);
  recorder.RequestArrived(2, /*block=*/8, /*background=*/false, 11.0);
  recorder.RequestScheduled(1, /*tape=*/3, 12.0);
  recorder.RequestDone(1, obs::RequestOutcome::kCompleted, 20.0);
  // Request 2 stays open; Finalize must close it.
  ASSERT_TRUE(recorder.Finalize(25.0).ok());
  const std::string trace = ReadFile(config.trace_out);
  EXPECT_EQ(CountOccurrences(trace, "\"ph\":\"b\""), 2);
  EXPECT_EQ(CountOccurrences(trace, "\"ph\":\"e\""), 2);
  EXPECT_NE(trace.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(trace.find("\"outcome\":\"open-at-end\""), std::string::npos);
}

TEST(TraceRecorder, IgnoresEventsForUnknownRequests) {
  obs::TraceConfig config;
  config.trace_out = ::testing::TempDir() + "obs_recorder_unknown.json";
  obs::TraceRecorder recorder(config);
  recorder.SetTopology("jukebox", 1);
  // No arrival recorded: these must be silently dropped, not crash.
  recorder.RequestScheduled(99, /*tape=*/1, 5.0);
  recorder.RequestRetry(99, 1, 6.0);
  recorder.RequestDone(99, obs::RequestOutcome::kCompleted, 7.0);
  ASSERT_TRUE(recorder.Finalize(10.0).ok());
  const std::string trace = ReadFile(config.trace_out);
  EXPECT_EQ(CountOccurrences(trace, "\"ph\":\"b\""), 0);
  EXPECT_EQ(CountOccurrences(trace, "\"ph\":\"e\""), 0);
  EXPECT_EQ(CountOccurrences(trace, "\"ph\":\"n\""), 0);
}

TEST(TraceRecorder, DisabledConfigRecordsNothing) {
  obs::TraceRecorder recorder(obs::TraceConfig{});
  EXPECT_FALSE(recorder.enabled());
  recorder.RequestArrived(1, 0, false, 1.0);
  recorder.DriveStateSlice(0, obs::DriveActivity::kReading, 0.0, 1.0);
  recorder.Instant("noop", 2.0);
  EXPECT_EQ(recorder.num_events(), 0);
  EXPECT_TRUE(recorder.Finalize(3.0).ok());
}

TEST(TraceRecorder, FinalizeTwiceIsFatal) {
  // Regression: Finalize closes the open spans and writes the files, so a
  // second call would double-close spans and truncate the output. It must
  // trip a check instead of silently rewriting.
  obs::TraceRecorder recorder(obs::TraceConfig{});
  EXPECT_TRUE(recorder.Finalize(3.0).ok());
  EXPECT_DEATH((void)recorder.Finalize(4.0), "called twice");
}

}  // namespace
}  // namespace tapejuke
