// Unit tests for Status / StatusOr.

#include "util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tapejuke {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kCapacityExceeded, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  const std::vector<int> moved = std::move(v).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(ReturnIfError, PropagatesFailure) {
  auto inner = []() { return Status::OutOfRange("x"); };
  auto outer = [&]() -> Status {
    TJ_RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(ReturnIfError, PassesSuccess) {
  auto outer = []() -> Status {
    TJ_RETURN_IF_ERROR(Status::Ok());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tapejuke
