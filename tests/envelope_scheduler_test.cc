// Unit tests for the envelope-extension scheduler (paper §3.2), including
// the paper's Figure 2 worked example.

#include "sched/envelope_scheduler.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "test_util.h"
#include "util/rng.h"

namespace tapejuke {
namespace {

Request Req(RequestId id, BlockId block) {
  return Request{id, block, static_cast<double>(id)};
}

// The paper's Figure 2: blocks A, B requested near the start of tape 1 (the
// mounted tape), C near the start of tape 0, and D replicated — far out on
// tape 1 but right after C on tape 0. A greedy scheduler runs to the end of
// tape 1 for D; the envelope algorithm fetches D's copy behind C instead.
class Figure2Test : public ::testing::Test {
 protected:
  static constexpr BlockId kA = 0, kB = 1, kC = 2, kD = 3;

  Figure2Test() : rig_(2) {
    rig_.Place(kA, 1, 0);
    rig_.Place(kB, 1, 1);
    rig_.Place(kD, 1, 9);  // far replica
    rig_.Place(kC, 0, 1);
    rig_.Place(kD, 0, 2);  // copy that follows C
    catalog_ = rig_.BuildCatalog();
    rig_.jukebox().SwitchTo(1);  // head at the beginning of tape 1
  }

  TinyRig rig_;
  std::optional<Catalog> catalog_;
};

TEST_F(Figure2Test, UpperEnvelopeRetrievesDFromTapeZero) {
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxRequests);
  const std::vector<Request> requests = {Req(1, kA), Req(2, kB), Req(3, kC),
                                         Req(4, kD)};
  const auto result = sched.ComputeUpperEnvelope(requests);

  // Initial envelope: tape 1 up to the end of B, tape 0 up to the end of C.
  ASSERT_EQ(result.initial_envelope.size(), 2u);
  EXPECT_EQ(result.initial_envelope[1], 32);
  EXPECT_EQ(result.initial_envelope[0], 32);
  // D was the only request unscheduled after step 2.
  ASSERT_EQ(result.initially_unscheduled.size(), 1u);
  EXPECT_EQ(result.initially_unscheduled[0].block, kD);

  // The extension encloses D's cheap copy on tape 0, not the far one.
  ASSERT_TRUE(result.assignment.contains(4));
  EXPECT_EQ(result.assignment.at(4).tape, 0);
  EXPECT_EQ(result.assignment.at(4).position, 32);
  EXPECT_EQ(result.envelope[0], 48);
  EXPECT_EQ(result.envelope[1], 32);  // tape 1 never extends to slot 9
}

TEST_F(Figure2Test, MajorRescheduleNeverVisitsTapeOneEnd) {
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxRequests);
  for (const Request& r :
       {Req(1, kA), Req(2, kB), Req(3, kC), Req(4, kD)}) {
    sched.OnArrival(r, 0);
  }
  // First sweep: the mounted tape (A, B) wins the max-requests tie.
  const TapeId first = sched.MajorReschedule();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(sched.sweep_size(), 2u);
  Position max_position = 0;
  while (auto entry = sched.PopNext()) {
    max_position = std::max(max_position, entry->position);
  }
  EXPECT_LE(max_position, 16);  // B, not the D copy at 144

  // Second sweep: tape 0 serves C and D.
  rig_.jukebox().SwitchTo(first);
  const TapeId second = sched.MajorReschedule();
  EXPECT_EQ(second, 0);
  EXPECT_EQ(sched.sweep_size(), 2u);
  EXPECT_EQ(sched.PopNext()->block, kC);
  EXPECT_EQ(sched.PopNext()->block, kD);
  EXPECT_FALSE(sched.HasWork());
}

TEST_F(Figure2Test, Name) {
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxBandwidth);
  EXPECT_EQ(sched.name(), "max-bandwidth envelope");
}

// Incremental-scheduler behaviour.
class EnvelopeIncrementalTest : public ::testing::Test {
 protected:
  // Tape 0: P (block 0) at slot 0; X (block 1) at slot 5, replicated on
  // tape 1 slot 8. Tape 1: Q (block 2) at slot 1; Y (block 3) at slot 9.
  EnvelopeIncrementalTest() : rig_(2) {
    rig_.Place(0, 0, 0);
    rig_.Place(1, 0, 5);
    rig_.Place(1, 1, 8);
    rig_.Place(2, 1, 1);
    rig_.Place(3, 1, 9);
    catalog_ = rig_.BuildCatalog();
    rig_.jukebox().SwitchTo(0);
  }

  TinyRig rig_;
  std::optional<Catalog> catalog_;
};

TEST_F(EnvelopeIncrementalTest, ArrivalInsideEnvelopeJoinsSweep) {
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxRequests);
  sched.OnArrival(Req(1, 0), 0);
  sched.OnArrival(Req(2, 1), 0);
  ASSERT_EQ(sched.MajorReschedule(), 0);
  EXPECT_EQ(sched.sweep_size(), 2u);
  // envelope on tape 0 reaches the end of X (96); a second request for P
  // (inside, ahead of head 0) inserts.
  sched.OnArrival(Req(3, 0), /*committed_head=*/0);
  EXPECT_EQ(sched.sweep_size(), 2u);  // joined P's existing entry
  EXPECT_EQ(sched.pending_size(), 0u);
}

TEST_F(EnvelopeIncrementalTest, ExtensionShrinksActiveSweep) {
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxRequests);
  sched.OnArrival(Req(1, 0), 0);  // P pins tape 0
  sched.OnArrival(Req(2, 1), 0);  // X: replicated, both copies outside
  sched.OnArrival(Req(3, 2), 0);  // Q pins tape 1
  ASSERT_EQ(sched.MajorReschedule(), 0);
  // Sweep on tape 0: P and X (X's tape-0 extension is cheaper than its
  // far tape-1 copy).
  EXPECT_EQ(sched.sweep_size(), 2u);
  ASSERT_EQ(sched.current_envelope().size(), 2u);
  EXPECT_EQ(sched.current_envelope()[0], 96);   // end of X on tape 0
  EXPECT_EQ(sched.current_envelope()[1], 32);   // end of Q

  // Y arrives: only on tape 1 at slot 9 (position 144). Extending tape 1's
  // envelope to 160 encloses X's tape-1 copy (128..144), so X becomes
  // redundant on tape 0: step 5 trims it from the active sweep.
  sched.OnArrival(Req(4, 3), /*committed_head=*/0);
  EXPECT_EQ(sched.sweep_size(), 1u);               // only P remains
  EXPECT_EQ(sched.current_envelope()[0], 16);      // shrunk to end of P
  EXPECT_EQ(sched.current_envelope()[1], 160);     // extended for Y
  EXPECT_EQ(sched.pending_size(), 3u);             // Q + re-deferred X + Y
  // Re-deferred requests keep arrival (id) order: X (id 2) before Q (3).
  EXPECT_EQ(sched.pending().front().id, 2);

  // The next visit to tape 1 serves Q, X, and Y in one pass.
  while (sched.PopNext()) {
  }
  rig_.jukebox().SwitchTo(0);
  EXPECT_EQ(sched.MajorReschedule(), 1);
  EXPECT_EQ(sched.sweep_size(), 3u);  // Q (16), X (128), Y (144)
}

TEST_F(EnvelopeIncrementalTest, ShrinkAblationKeepsSweepIntact) {
  SchedulerOptions options;
  options.envelope_shrink = false;
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxRequests, options);
  sched.OnArrival(Req(1, 0), 0);
  sched.OnArrival(Req(2, 1), 0);
  sched.OnArrival(Req(3, 2), 0);
  ASSERT_EQ(sched.MajorReschedule(), 0);
  EXPECT_EQ(sched.sweep_size(), 2u);
  sched.OnArrival(Req(4, 3), 0);
  EXPECT_EQ(sched.sweep_size(), 2u);  // X stays scheduled on tape 0
}

TEST_F(EnvelopeIncrementalTest, ArrivalWhileIdleIsDeferred) {
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxRequests);
  sched.OnArrival(Req(1, 0), 0);
  EXPECT_EQ(sched.pending_size(), 1u);
  EXPECT_TRUE(sched.sweep_empty());
}

TEST_F(EnvelopeIncrementalTest, NoPendingWorkReturnsInvalidTape) {
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxRequests);
  EXPECT_EQ(sched.MajorReschedule(), kInvalidTape);
}

TEST_F(Figure2Test, ValidateEnvelopeModeAgreesWithReference) {
  SchedulerOptions options;
  options.validate_envelope = true;  // per-round + full-result oracles armed
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxRequests, options);
  for (const Request& r :
       {Req(1, kA), Req(2, kB), Req(3, kC), Req(4, kD)}) {
    sched.OnArrival(r, 0);
  }
  EXPECT_EQ(sched.MajorReschedule(), 1);
  EXPECT_EQ(sched.sweep_size(), 2u);
}

// ---------------------------------------------------------------------------
// Incremental-kernel regression tests.
// ---------------------------------------------------------------------------

// Two tapes engineered so their best extension prefixes have
// *mathematically* equal incremental bandwidth reached through different
// locate-gap sums ({32, 96} vs {64, 64} MB, all in the long-locate regime).
// Floating-point evaluation of the two sums can differ in the last ulp, so
// an exact `==` tie-break may never fire and the winner would be whichever
// rounding landed higher. The relative-epsilon tie-break must treat them as
// tied and fall through to the deterministic rules.
class EnvelopeTieBreakTest : public ::testing::Test {
 protected:
  static constexpr BlockId kPin1 = 0, kPin2 = 1, kE = 2, kF = 3;

  EnvelopeTieBreakTest() : rig_(3, /*capacity_mb=*/320) {
    rig_.Place(kPin1, 1, 0);  // non-replicated: pins tape 1's envelope
    rig_.Place(kPin2, 2, 0);  // non-replicated: pins tape 2's envelope
    rig_.Place(kE, 1, 3);     // tape 1 gaps: 32 MB then 96 MB
    rig_.Place(kF, 1, 10);
    rig_.Place(kE, 2, 5);     // tape 2 gaps: 64 MB then 64 MB
    rig_.Place(kF, 2, 10);
    catalog_ = rig_.BuildCatalog();
    rig_.jukebox().SwitchTo(0);
  }

  TinyRig rig_;
  std::optional<Catalog> catalog_;
};

TEST_F(EnvelopeTieBreakTest, BandwidthTieGoesToTapeWithMoreRequests) {
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxRequests);
  // Two requests pin tape 2's anchor, one pins tape 1's: tape 2 must win
  // the bandwidth tie on scheduled-request count.
  const std::vector<Request> requests = {Req(1, kPin1), Req(2, kPin2),
                                         Req(3, kPin2), Req(4, kE),
                                         Req(5, kF)};
  const auto result = sched.ComputeUpperEnvelope(requests);
  EXPECT_EQ(result.assignment.at(4).tape, 2);
  EXPECT_EQ(result.assignment.at(4).position, 80);
  EXPECT_EQ(result.assignment.at(5).tape, 2);
  EXPECT_EQ(result.assignment.at(5).position, 160);
  EXPECT_EQ(result.envelope[1], 16);   // tape 1 never extends
  EXPECT_EQ(result.envelope[2], 176);
  EXPECT_EQ(sched.counters().extension_rounds, 1);
  // Round 1 scores only the two tapes with extension candidates.
  EXPECT_EQ(sched.counters().tapes_rescored, 2);
}

TEST_F(EnvelopeTieBreakTest, BandwidthAndCountTieGoesToJukeboxOrder) {
  EnvelopeScheduler sched(&rig_.jukebox(), &*catalog_,
                          TapePolicy::kMaxRequests);
  // One request per anchor: bandwidth and counts both tie, so the scan
  // order from the mounted tape (0) picks tape 1 over tape 2.
  const std::vector<Request> requests = {Req(1, kPin1), Req(2, kPin2),
                                         Req(3, kE), Req(4, kF)};
  const auto result = sched.ComputeUpperEnvelope(requests);
  EXPECT_EQ(result.assignment.at(3).tape, 1);
  EXPECT_EQ(result.assignment.at(3).position, 48);
  EXPECT_EQ(result.assignment.at(4).tape, 1);
  EXPECT_EQ(result.assignment.at(4).position, 160);
  EXPECT_EQ(result.envelope[1], 176);
  EXPECT_EQ(result.envelope[2], 16);
}

// Randomized equivalence fuzz: the incremental kernel must produce results
// byte-identical to the from-scratch reference on arbitrary instances, and
// every assignment must be a real catalog replica (regression for the
// synthetic `position / block_mb` Replica the old step 4 fabricated).
class EnvelopeKernelFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnvelopeKernelFuzz, IncrementalMatchesReferenceKernel) {
  Rng rng(GetParam());
  TinyRig rig(4, /*capacity_mb=*/400, /*block_size_mb=*/16);
  std::set<std::pair<TapeId, int64_t>> used;
  auto place_random = [&](BlockId block, TapeId tape, int64_t lo,
                          int64_t hi) {
    for (;;) {
      const int64_t slot =
          lo + static_cast<int64_t>(
                   rng.UniformUint64(static_cast<uint64_t>(hi - lo)));
      if (used.insert({tape, slot}).second) {
        rig.Place(block, tape, slot);
        return;
      }
    }
  };
  BlockId next_block = 0;
  // 1-3 non-replicated anchors near the tape starts pin the envelope.
  const int num_anchors = 1 + static_cast<int>(rng.UniformUint64(3));
  for (int i = 0; i < num_anchors; ++i) {
    place_random(next_block++, static_cast<TapeId>(rng.UniformUint64(4)), 0,
                 5);
  }
  // 3-7 replicated blocks with 2-4 copies on distinct tapes, farther out.
  const int num_replicated = 3 + static_cast<int>(rng.UniformUint64(5));
  for (int i = 0; i < num_replicated; ++i) {
    const int copies = 2 + static_cast<int>(rng.UniformUint64(3));
    std::set<TapeId> tapes;
    while (static_cast<int>(tapes.size()) < copies) {
      tapes.insert(static_cast<TapeId>(rng.UniformUint64(4)));
    }
    for (const TapeId t : tapes) place_random(next_block, t, 3, 25);
    ++next_block;
  }
  const Catalog catalog = rig.BuildCatalog();
  rig.jukebox().SwitchTo(static_cast<TapeId>(rng.UniformUint64(4)));

  EnvelopeScheduler sched(&rig.jukebox(), &catalog,
                          TapePolicy::kMaxRequests);
  std::vector<Request> requests;
  RequestId id = 0;
  for (BlockId b = 0; b < next_block; ++b) {
    requests.push_back(Request{id++, b, 0.0});
  }
  // A couple of duplicate requests exercise same-position list entries and
  // the post-extension absorb path.
  for (int i = 0; i < 2; ++i) {
    requests.push_back(Request{
        id++,
        static_cast<BlockId>(
            rng.UniformUint64(static_cast<uint64_t>(next_block))),
        0.0});
  }

  const auto incremental = sched.ComputeUpperEnvelope(requests);
  const auto reference = sched.ComputeUpperEnvelopeReference(requests);
  EXPECT_EQ(incremental.envelope, reference.envelope);
  EXPECT_EQ(incremental.scheduled_per_tape, reference.scheduled_per_tape);
  EXPECT_EQ(incremental.initial_envelope, reference.initial_envelope);
  ASSERT_EQ(incremental.assignment.size(), reference.assignment.size());
  for (const auto& [rid, replica] : incremental.assignment) {
    ASSERT_TRUE(reference.assignment.contains(rid));
    EXPECT_EQ(replica, reference.assignment.at(rid));
  }
  for (const Request& request : requests) {
    ASSERT_TRUE(incremental.assignment.contains(request.id));
    const Replica& chosen = incremental.assignment.at(request.id);
    bool in_catalog = false;
    for (const Replica& replica : catalog.ReplicasOf(request.block)) {
      in_catalog |= replica == chosen;
    }
    EXPECT_TRUE(in_catalog)
        << "request " << request.id << " assigned a non-catalog replica";
  }
  sched.CrossCheckEnvelope(requests);  // TJ_CHECK-fails on divergence
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EnvelopeKernelFuzz,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace tapejuke
