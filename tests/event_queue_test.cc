// Unit tests for the DES event queue.

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace tapejuke {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.Schedule(3.0, 30);
  q.Schedule(1.0, 10);
  q.Schedule(2.0, 20);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.NextTime(), 1.0);
  EXPECT_EQ(q.Pop().second, 10);
  EXPECT_EQ(q.Pop().second, 20);
  EXPECT_EQ(q.Pop().second, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesPreserveInsertionOrder) {
  EventQueue<std::string> q;
  q.Schedule(5.0, "first");
  q.Schedule(5.0, "second");
  q.Schedule(5.0, "third");
  EXPECT_EQ(q.Pop().second, "first");
  EXPECT_EQ(q.Pop().second, "second");
  EXPECT_EQ(q.Pop().second, "third");
}

TEST(EventQueue, EqualTimeFifoInterleavedWithOtherTimes) {
  // The FIFO tie-break must hold when equal-time events are interleaved
  // with earlier and later ones (they share a calendar bucket with
  // different-day events).
  EventQueue<int> q;
  q.Schedule(7.0, 1);
  q.Schedule(3.0, 0);
  q.Schedule(7.0, 2);
  q.Schedule(9.0, 5);
  q.Schedule(7.0, 3);
  EXPECT_EQ(q.Pop().second, 0);
  q.Schedule(7.0, 4);  // scheduled after pops began, still FIFO among 7.0s
  EXPECT_EQ(q.Pop().second, 1);
  EXPECT_EQ(q.Pop().second, 2);
  EXPECT_EQ(q.Pop().second, 3);
  EXPECT_EQ(q.Pop().second, 4);
  EXPECT_EQ(q.Pop().second, 5);
}

TEST(EventQueue, EqualTimeFifoSurvivesResize) {
  // Push enough events to force bucket-array growth and then drain: the
  // insertion-order tie-break must be unaffected by resizes.
  EventQueue<int> q;
  constexpr int kBatch = 500;
  for (int i = 0; i < kBatch; ++i) q.Schedule(10.0, i);
  for (int i = 0; i < kBatch; ++i) q.Schedule(20.0, kBatch + i);
  for (int i = 0; i < 2 * kBatch; ++i) {
    EXPECT_EQ(q.Pop().second, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HoldModelMatchesReferenceOrdering) {
  // A deterministic hold-model churn (pop one, push one with a pseudo-
  // random future offset) against a sorted-reference model, through
  // several grow/shrink cycles.
  EventQueue<int> q;
  std::vector<std::pair<double, int>> reference;  // (time, payload)
  uint64_t state = 12345;
  auto next_u64 = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  double clock = 0;
  int id = 0;
  auto push = [&](double at) {
    q.Schedule(at, id);
    reference.emplace_back(at, id);
    ++id;
  };
  for (int i = 0; i < 256; ++i) {
    push(static_cast<double>(next_u64() % 1000) / 10.0);
  }
  for (int step = 0; step < 4096; ++step) {
    std::stable_sort(reference.begin(), reference.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    const auto [time, payload] = q.Pop();
    ASSERT_EQ(time, reference.front().first);
    ASSERT_EQ(payload, reference.front().second);
    reference.erase(reference.begin());
    clock = time;
    // Occasionally burst (grow) or drain (shrink) the population.
    const uint64_t draw = next_u64();
    const int pushes = step % 97 == 0 ? 64 : (draw % 16 == 0 ? 0 : 1);
    for (int p = 0; p < pushes && reference.size() < 4096; ++p) {
      push(clock + static_cast<double>(next_u64() % 100000) / 100.0);
    }
    if (q.empty()) break;
  }
}

TEST(EventQueue, SparseFarFutureEventsPopInOrder) {
  // Events many "years" apart exercise the direct-jump path (a full
  // bucket rotation finds nothing).
  EventQueue<int> q;
  q.Schedule(0.5, 0);
  q.Schedule(1e6, 1);
  q.Schedule(2e9, 2);
  q.Schedule(3e12, 3);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.Pop().second, i);
  }
}

TEST(EventQueue, ScheduleAtLastPoppedTimeIsAllowed) {
  EventQueue<int> q;
  q.Schedule(5.0, 1);
  EXPECT_EQ(q.Pop().second, 1);
  q.Schedule(5.0, 2);  // exactly the last popped timestamp: legal
  EXPECT_EQ(q.Pop().second, 2);
}

#ifndef NDEBUG
TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EventQueue<int> q;
  q.Schedule(10.0, 1);
  ASSERT_EQ(q.Pop().second, 1);
  EXPECT_DEATH(q.Schedule(9.0, 2), "scheduling in the past");
}
#endif

TEST(EventQueue, PopUntilRespectsDeadline) {
  EventQueue<int> q;
  q.Schedule(1.0, 1);
  q.Schedule(2.0, 2);
  q.Schedule(10.0, 3);
  EXPECT_TRUE(q.PopUntil(5.0).has_value());
  EXPECT_TRUE(q.PopUntil(5.0).has_value());
  EXPECT_FALSE(q.PopUntil(5.0).has_value());
  EXPECT_EQ(q.size(), 1u);
  const auto last = q.PopUntil(10.0);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->second, 3);
}

TEST(EventQueue, PopUntilOnEmptyQueue) {
  EventQueue<int> q;
  EXPECT_FALSE(q.PopUntil(100.0).has_value());
}

TEST(EventQueue, MovesPayload) {
  EventQueue<std::unique_ptr<int>> q;
  q.Schedule(1.0, std::make_unique<int>(7));
  auto [time, payload] = q.Pop();
  EXPECT_DOUBLE_EQ(time, 1.0);
  EXPECT_EQ(*payload, 7);
}

TEST(EventQueueDeathTest, PopEmptyAborts) {
  EventQueue<int> q;
  EXPECT_DEATH(q.Pop(), "");
  EXPECT_DEATH(q.NextTime(), "");
}

}  // namespace
}  // namespace tapejuke
