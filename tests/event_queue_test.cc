// Unit tests for the DES event queue.

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <string>

namespace tapejuke {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.Schedule(3.0, 30);
  q.Schedule(1.0, 10);
  q.Schedule(2.0, 20);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.NextTime(), 1.0);
  EXPECT_EQ(q.Pop().second, 10);
  EXPECT_EQ(q.Pop().second, 20);
  EXPECT_EQ(q.Pop().second, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesPreserveInsertionOrder) {
  EventQueue<std::string> q;
  q.Schedule(5.0, "first");
  q.Schedule(5.0, "second");
  q.Schedule(5.0, "third");
  EXPECT_EQ(q.Pop().second, "first");
  EXPECT_EQ(q.Pop().second, "second");
  EXPECT_EQ(q.Pop().second, "third");
}

TEST(EventQueue, PopUntilRespectsDeadline) {
  EventQueue<int> q;
  q.Schedule(1.0, 1);
  q.Schedule(2.0, 2);
  q.Schedule(10.0, 3);
  EXPECT_TRUE(q.PopUntil(5.0).has_value());
  EXPECT_TRUE(q.PopUntil(5.0).has_value());
  EXPECT_FALSE(q.PopUntil(5.0).has_value());
  EXPECT_EQ(q.size(), 1u);
  const auto last = q.PopUntil(10.0);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->second, 3);
}

TEST(EventQueue, PopUntilOnEmptyQueue) {
  EventQueue<int> q;
  EXPECT_FALSE(q.PopUntil(100.0).has_value());
}

TEST(EventQueue, MovesPayload) {
  EventQueue<std::unique_ptr<int>> q;
  q.Schedule(1.0, std::make_unique<int>(7));
  auto [time, payload] = q.Pop();
  EXPECT_DOUBLE_EQ(time, 1.0);
  EXPECT_EQ(*payload, 7);
}

TEST(EventQueueDeathTest, PopEmptyAborts) {
  EventQueue<int> q;
  EXPECT_DEATH(q.Pop(), "");
  EXPECT_DEATH(q.NextTime(), "");
}

}  // namespace
}  // namespace tapejuke
