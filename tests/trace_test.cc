// Tests for trace capture/replay.

#include "sim/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "layout/placement.h"
#include "sched/greedy_scheduler.h"
#include "sim/simulator.h"

namespace tapejuke {
namespace {

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;
  return config;
}

struct Rig {
  Rig()
      : jukebox(PaperJukebox()),
        catalog(LayoutBuilder::Build(&jukebox, LayoutSpec{}).value()),
        scheduler(&jukebox, &catalog, TapePolicy::kMaxBandwidth, true) {}
  Jukebox jukebox;
  Catalog catalog;
  GreedyScheduler scheduler;
};

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ =
      ::testing::TempDir() + "/tapejuke_trace_test.csv";
};

TEST_F(TraceTest, SaveLoadRoundTrip) {
  const std::vector<TraceRecord> records = {
      {0.5, 10}, {1.25, 3}, {99.0, 4479}};
  ASSERT_TRUE(SaveTrace(path_, records).ok());
  const auto loaded = LoadTrace(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, records);
}

TEST_F(TraceTest, LoadRejectsMalformedLines) {
  {
    std::ofstream out(path_);
    out << "arrival_seconds,block\n1.0,5\nnot-a-number,3\n";
  }
  EXPECT_FALSE(LoadTrace(path_).ok());
  {
    std::ofstream out(path_);
    out << "1.0,5\n0.5,3\n";  // out of order
  }
  EXPECT_FALSE(LoadTrace(path_).ok());
  {
    std::ofstream out(path_);
    out << "1.0\n";  // missing block
  }
  EXPECT_FALSE(LoadTrace(path_).ok());
}

TEST_F(TraceTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(LoadTrace("/nonexistent/trace.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(TraceSynthesis, MatchesWorkloadParameters) {
  Jukebox jukebox(PaperJukebox());
  const Catalog catalog =
      LayoutBuilder::Build(&jukebox, LayoutSpec{}).value();
  WorkloadConfig config;
  config.mean_interarrival_seconds = 60;
  config.hot_request_fraction = 0.4;
  config.seed = 61;
  const auto trace = SynthesizeTrace(catalog, config, 600'000);
  // ~10k arrivals at one per minute over 600k seconds.
  EXPECT_NEAR(static_cast<double>(trace.size()), 10'000, 500);
  int hot = 0;
  for (const TraceRecord& record : trace) {
    ASSERT_GE(record.block, 0);
    ASSERT_LT(record.block, catalog.num_blocks());
    if (catalog.IsHot(record.block)) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / trace.size(), 0.4, 0.02);
}

TEST(TraceReplay, SameTraceSameResults) {
  Jukebox probe(PaperJukebox());
  const Catalog catalog_probe =
      LayoutBuilder::Build(&probe, LayoutSpec{}).value();
  WorkloadConfig config;
  config.mean_interarrival_seconds = 90;
  config.seed = 71;
  const auto trace = SynthesizeTrace(catalog_probe, config, 300'000);

  auto run = [&]() {
    Rig rig;
    SimulationConfig sim_config;
    sim_config.duration_seconds = 300'000;
    sim_config.warmup_seconds = 30'000;
    Simulator sim(&rig.jukebox, &rig.catalog, &rig.scheduler, sim_config,
                  TraceToRequests(trace));
    return sim.Run();
  };
  const SimulationResult a = run();
  const SimulationResult b = run();
  EXPECT_GT(a.completed_requests, 1000);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_DOUBLE_EQ(a.mean_delay_seconds, b.mean_delay_seconds);
}

TEST(TraceReplay, EquivalentToGeneratorDrivenOpenRun) {
  // Replaying a synthesized trace reproduces the generator-driven open-
  // queuing run exactly (same arrival instants, same blocks).
  WorkloadConfig config;
  config.model = QueuingModel::kOpen;
  config.mean_interarrival_seconds = 90;
  config.seed = 81;

  Rig generator_rig;
  SimulationConfig sim_config;
  sim_config.duration_seconds = 300'000;
  sim_config.warmup_seconds = 30'000;
  sim_config.workload = config;
  Simulator generated(&generator_rig.jukebox, &generator_rig.catalog,
                      &generator_rig.scheduler, sim_config);
  const SimulationResult a = generated.Run();

  Jukebox probe(PaperJukebox());
  const Catalog catalog_probe =
      LayoutBuilder::Build(&probe, LayoutSpec{}).value();
  const auto trace = SynthesizeTrace(catalog_probe, config, 300'000);
  Rig replay_rig;
  Simulator replayed(&replay_rig.jukebox, &replay_rig.catalog,
                     &replay_rig.scheduler, sim_config,
                     TraceToRequests(trace));
  const SimulationResult b = replayed.Run();

  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_DOUBLE_EQ(a.throughput_mb_per_s, b.throughput_mb_per_s);
  EXPECT_DOUBLE_EQ(a.mean_delay_seconds, b.mean_delay_seconds);
}

TEST(TraceReplayDeathTest, RejectsUnknownBlocks) {
  Rig rig;
  SimulationConfig sim_config;
  std::vector<Request> trace = {Request{-1, 999'999, 1.0}};
  EXPECT_DEATH(Simulator(&rig.jukebox, &rig.catalog, &rig.scheduler,
                         sim_config, std::move(trace)),
               "unknown block");
}

TEST(TraceReplayDeathTest, RejectsUnorderedTrace) {
  Rig rig;
  SimulationConfig sim_config;
  std::vector<Request> trace = {Request{-1, 1, 5.0}, Request{-1, 2, 1.0}};
  EXPECT_DEATH(Simulator(&rig.jukebox, &rig.catalog, &rig.scheduler,
                         sim_config, std::move(trace)),
               "time-ordered");
}

}  // namespace
}  // namespace tapejuke
