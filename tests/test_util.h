// Shared test helpers: a tiny hand-built jukebox + catalog rig.

#ifndef TAPEJUKE_TESTS_TEST_UTIL_H_
#define TAPEJUKE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <vector>

#include "layout/catalog.h"
#include "tape/jukebox.h"
#include "util/check.h"

namespace tapejuke {

/// A small jukebox whose tape contents are placed by hand, from which a
/// catalog is derived. Block ids must be dense (0..L-1); hot blocks are the
/// ids below `num_hot`.
class TinyRig {
 public:
  explicit TinyRig(int32_t num_tapes, int64_t capacity_mb = 160,
                   int64_t block_size_mb = 16)
      : jukebox_(MakeConfig(num_tapes, capacity_mb, block_size_mb)) {}

  /// Places a copy of `block` at `slot` on `tape`.
  void Place(BlockId block, TapeId tape, int64_t slot) {
    const Status status = jukebox_.tape(tape).PlaceBlock(block, slot);
    TJ_CHECK(status.ok()) << status.ToString();
  }

  /// Derives the catalog from the placed blocks.
  Catalog BuildCatalog(int64_t num_hot = 0) {
    std::map<BlockId, std::vector<Replica>> by_block;
    for (TapeId t = 0; t < jukebox_.num_tapes(); ++t) {
      const Tape& tape = jukebox_.tape(t);
      for (int64_t s = 0; s < tape.num_slots(); ++s) {
        const BlockId b = tape.BlockAtSlot(s);
        if (b == kInvalidBlock) continue;
        by_block[b].push_back(Replica{t, s, tape.PositionOfSlot(s)});
      }
    }
    TJ_CHECK(!by_block.empty());
    const BlockId max_block = by_block.rbegin()->first;
    std::vector<std::vector<Replica>> replicas(
        static_cast<size_t>(max_block) + 1);
    for (auto& [block, copies] : by_block) {
      replicas[static_cast<size_t>(block)] = std::move(copies);
    }
    return Catalog(std::move(replicas), num_hot);
  }

  Jukebox& jukebox() { return jukebox_; }
  const TimingModel& model() const { return jukebox_.model(); }
  int64_t block_mb() const { return jukebox_.config().block_size_mb; }

 private:
  static JukeboxConfig MakeConfig(int32_t num_tapes, int64_t capacity_mb,
                                  int64_t block_size_mb) {
    JukeboxConfig config;
    config.num_tapes = num_tapes;
    config.block_size_mb = block_size_mb;
    config.timing.tape_capacity_mb = capacity_mb;
    return config;
  }

  Jukebox jukebox_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_TESTS_TEST_UTIL_H_
