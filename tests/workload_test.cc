// Unit tests for workload generation (skew and arrival processes).

#include "sim/workload.h"

#include <gtest/gtest.h>

#include <cmath>

#include "layout/placement.h"
#include "tape/jukebox.h"

namespace tapejuke {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : jukebox_(MakeConfig()) {
    LayoutSpec spec;  // PH-10
    catalog_.emplace(LayoutBuilder::Build(&jukebox_, spec).value());
  }

  static JukeboxConfig MakeConfig() {
    JukeboxConfig config;
    config.num_tapes = 10;
    config.block_size_mb = 16;
    return config;
  }

  Jukebox jukebox_;
  std::optional<Catalog> catalog_;
};

TEST_F(WorkloadTest, ConfigValidation) {
  WorkloadConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.queue_length = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = WorkloadConfig{};
  config.model = QueuingModel::kOpen;
  config.mean_interarrival_seconds = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = WorkloadConfig{};
  config.hot_request_fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST_F(WorkloadTest, HotFractionMatchesRh) {
  WorkloadConfig config;
  config.hot_request_fraction = 0.40;
  config.seed = 3;
  WorkloadGenerator gen(&*catalog_, config);
  int hot = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (catalog_->IsHot(gen.NextBlock())) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.40, 0.01);
}

TEST_F(WorkloadTest, HotAndColdDrawsAreUniformWithinClass) {
  WorkloadConfig config;
  config.hot_request_fraction = 0.5;
  config.seed = 5;
  WorkloadGenerator gen(&*catalog_, config);
  // Mean of hot draws should be ~(H-1)/2; cold draws ~(H + L-1)/2.
  const double h = static_cast<double>(catalog_->num_hot_blocks());
  const double l = static_cast<double>(catalog_->num_blocks());
  double hot_sum = 0;
  double cold_sum = 0;
  int hots = 0;
  int colds = 0;
  for (int i = 0; i < 200000; ++i) {
    const BlockId b = gen.NextBlock();
    if (catalog_->IsHot(b)) {
      hot_sum += static_cast<double>(b);
      ++hots;
    } else {
      cold_sum += static_cast<double>(b);
      ++colds;
    }
  }
  EXPECT_NEAR(hot_sum / hots, (h - 1) / 2, h * 0.02);
  EXPECT_NEAR(cold_sum / colds, (h + l - 1) / 2, l * 0.02);
}

TEST_F(WorkloadTest, ExtremeSkewValues) {
  WorkloadConfig config;
  config.hot_request_fraction = 1.0;
  config.seed = 7;
  WorkloadGenerator all_hot(&*catalog_, config);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(catalog_->IsHot(all_hot.NextBlock()));
  }
  config.hot_request_fraction = 0.0;
  WorkloadGenerator all_cold(&*catalog_, config);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_FALSE(catalog_->IsHot(all_cold.NextBlock()));
  }
}

TEST_F(WorkloadTest, RequestIdsAreSequential) {
  WorkloadGenerator gen(&*catalog_, WorkloadConfig{});
  EXPECT_EQ(gen.NextRequest(1.0).id, 0);
  EXPECT_EQ(gen.NextRequest(2.0).id, 1);
  const Request r = gen.NextRequest(3.5);
  EXPECT_EQ(r.id, 2);
  EXPECT_DOUBLE_EQ(r.arrival_time, 3.5);
}

TEST_F(WorkloadTest, SameSeedSameStream) {
  WorkloadConfig config;
  config.seed = 11;
  WorkloadGenerator a(&*catalog_, config);
  WorkloadGenerator b(&*catalog_, config);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextBlock(), b.NextBlock());
    ASSERT_DOUBLE_EQ(a.NextInterarrival(), b.NextInterarrival());
  }
}

TEST_F(WorkloadTest, ZipfQuantileBoundariesStayInRange) {
  WorkloadConfig config;
  config.skew = SkewModel::kZipf;
  config.zipf_theta = 0.8;
  WorkloadGenerator gen(&*catalog_, config);
  const BlockId last = catalog_->num_blocks() - 1;
  EXPECT_EQ(gen.ZipfBlockForQuantile(0.0), 0);
  // The largest double below 1.0 — the worst case UniformDouble can emit.
  EXPECT_EQ(gen.ZipfBlockForQuantile(std::nextafter(1.0, 0.0)), last);
  // Quantiles at or above the final CDF entry must clamp to the last
  // block, not mint a BlockId one past the catalog.
  EXPECT_EQ(gen.ZipfBlockForQuantile(1.0), last);
  EXPECT_EQ(gen.ZipfBlockForQuantile(std::nextafter(1.0, 2.0)), last);
}

TEST_F(WorkloadTest, ZipfDrawsStayInRangeAndSkewToLowRanks) {
  WorkloadConfig config;
  config.skew = SkewModel::kZipf;
  config.zipf_theta = 1.2;
  config.seed = 17;
  WorkloadGenerator gen(&*catalog_, config);
  int64_t low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const BlockId b = gen.NextBlock();
    ASSERT_GE(b, 0);
    ASSERT_LT(b, catalog_->num_blocks());
    if (b < catalog_->num_blocks() / 10) ++low;
  }
  // Under Zipf(1.2) the most popular 10% of ranks carry well over half the
  // request mass.
  EXPECT_GT(low, n / 2);
}

TEST_F(WorkloadTest, ZipfThetaZeroIsUniform) {
  WorkloadConfig config;
  config.skew = SkewModel::kZipf;
  config.zipf_theta = 0.0;
  config.seed = 19;
  WorkloadGenerator gen(&*catalog_, config);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(gen.NextBlock());
  const double l = static_cast<double>(catalog_->num_blocks());
  EXPECT_NEAR(sum / n, (l - 1) / 2, l * 0.02);
}

TEST_F(WorkloadTest, InterarrivalMeanMatches) {
  WorkloadConfig config;
  config.model = QueuingModel::kOpen;
  config.mean_interarrival_seconds = 120.0;
  config.seed = 13;
  WorkloadGenerator gen(&*catalog_, config);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += gen.NextInterarrival();
  EXPECT_NEAR(sum / n, 120.0, 2.0);
}

}  // namespace
}  // namespace tapejuke
