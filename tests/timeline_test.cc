// Tests for the timeline telemetry module (obs/timeline) and its
// integration into the simulators and the farm: schema/summary
// invariants, counter consistency against results, and — the load-bearing
// promise — that enabling the timeline never changes simulation results
// and farm timelines are byte-identical at any thread count.

#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/farm.h"
#include "sched/greedy_scheduler.h"
#include "sim/multi_drive.h"
#include "sim/simulator.h"

namespace tapejuke {
namespace {

using obs::StatRegistry;
using obs::TimelineConfig;
using obs::TimelineSampler;
using obs::WindowStat;

TimelineConfig BufferedTimeline(double interval) {
  TimelineConfig config;
  config.interval_seconds = interval;
  config.buffer_only = true;
  return config;
}

// --- WindowStat edges (the windowed/timeline p99 discipline) ---

TEST(WindowStat, EmptyWindowQuantileIsZero) {
  WindowStat w(0.0, 100.0, 10);
  EXPECT_EQ(w.count(), 0);
  EXPECT_DOUBLE_EQ(w.Quantile(0.50), 0.0);
  EXPECT_DOUBLE_EQ(w.Quantile(0.99), 0.0);
}

TEST(WindowStat, SingleSampleWindow) {
  WindowStat w(0.0, 100.0, 10);
  w.Add(42.0);
  EXPECT_EQ(w.count(), 1);
  // Both quantiles interpolate inside the single occupied bucket [40, 50).
  EXPECT_GE(w.Quantile(0.50), 40.0);
  EXPECT_LE(w.Quantile(0.50), 50.0);
  EXPECT_LE(w.Quantile(0.50), w.Quantile(0.99));
  EXPECT_LE(w.Quantile(0.99), 50.0);
}

TEST(WindowStat, OverflowMassReportsTrackedMaximum) {
  WindowStat w(0.0, 10.0, 10);
  for (int i = 0; i < 9; ++i) w.Add(5.0);
  w.Add(5000.0);  // past the histogram range
  EXPECT_EQ(w.overflow(), 1);
  EXPECT_DOUBLE_EQ(w.window_max(), 5000.0);
  // p50 resolves inside the buckets; p99 lands in the overflow mass and
  // must report the true tracked maximum, not saturate at hi = 10.
  EXPECT_GE(w.Quantile(0.50), 5.0);
  EXPECT_LE(w.Quantile(0.50), 6.0);
  EXPECT_DOUBLE_EQ(w.Quantile(0.99), 5000.0);
}

TEST(WindowStat, ResetClearsWindow) {
  WindowStat w(0.0, 10.0, 10);
  w.Add(3.0);
  w.Add(5000.0);
  w.Reset();
  EXPECT_EQ(w.count(), 0);
  EXPECT_EQ(w.overflow(), 0);
  EXPECT_DOUBLE_EQ(w.Quantile(0.99), 0.0);
}

// --- StatRegistry invariants ---

TEST(StatRegistry, RejectsDuplicateNamesAcrossKinds) {
  TimelineSampler sampler(BufferedTimeline(10.0));
  StatRegistry* reg = sampler.registry();
  reg->AddCounter("x", [] { return int64_t{0}; });
  EXPECT_DEATH(reg->AddGauge("x", [] { return 0.0; }), "duplicate");
}

TEST(StatRegistry, FreezesAtFirstSample) {
  TimelineSampler sampler(BufferedTimeline(10.0));
  sampler.registry()->AddCounter("x", [] { return int64_t{0}; });
  sampler.SampleUpTo(10.0);
  EXPECT_DEATH(
      sampler.registry()->AddCounter("y", [] { return int64_t{0}; }),
      "frozen");
}

TEST(StatRegistry, ChecksCounterMonotonicity) {
  TimelineSampler sampler(BufferedTimeline(10.0));
  int64_t value = 5;
  sampler.registry()->AddCounter("down", [&value] { return value; });
  sampler.SampleUpTo(10.0);
  value = 3;
  EXPECT_DEATH(sampler.SampleUpTo(20.0), "decreased");
}

// --- TimelineSampler unit behavior ---

TEST(TimelineSampler, EmitsRowsOnTheIntervalGrid) {
  TimelineSampler sampler(BufferedTimeline(2.0));
  int64_t completed = 0;
  double depth = 0;
  double busy = 0;
  sampler.registry()->AddCounter("completed",
                                 [&completed] { return completed; });
  sampler.registry()->AddGauge("queue_depth", [&depth] { return depth; });
  sampler.registry()->AddAccum("busy_seconds", [&busy] { return busy; });
  WindowStat* delay = sampler.registry()->AddWindow("delay", 0, 100, 10);

  completed = 1;
  depth = 7;
  busy = 1.5;
  delay->Add(30.0);
  sampler.SampleUpTo(4.9);  // rows at t=2 and t=4
  ASSERT_EQ(sampler.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(sampler.rows()[0].t, 2.0);
  EXPECT_DOUBLE_EQ(sampler.rows()[1].t, 4.0);
  // The window resets after the first row that consumed it.
  EXPECT_NE(sampler.rows()[0].json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(sampler.rows()[1].json.find("\"count\":0"), std::string::npos);
  // Accum rows carry deltas: all 1.5 in the first row, 0 in the second.
  EXPECT_NE(sampler.rows()[0].json.find("\"busy_seconds\":1.5"),
            std::string::npos);
  EXPECT_NE(sampler.rows()[1].json.find("\"busy_seconds\":0"),
            std::string::npos);

  completed = 3;
  depth = 2;
  busy = 4.0;
  ASSERT_TRUE(sampler.FinishAt(9.0).ok());
  // Rows at 6 and 8 from the grid, plus the final row at the end clock.
  ASSERT_EQ(sampler.rows().size(), 5u);
  EXPECT_DOUBLE_EQ(sampler.rows().back().t, 9.0);
  EXPECT_NE(sampler.rows()[2].json.find("\"busy_seconds\":2.5"),
            std::string::npos);

  EXPECT_EQ(sampler.summary().samples, 5);
  EXPECT_DOUBLE_EQ(sampler.summary().peak_queue_depth, 7.0);
  // The only populated window held one 30 s observation: its interval p99
  // interpolates inside bucket [30, 40).
  EXPECT_GE(sampler.summary().worst_window_p99, 30.0);
  EXPECT_LE(sampler.summary().worst_window_p99, 40.0);
  ASSERT_EQ(sampler.summary().final_counters.size(), 1u);
  EXPECT_EQ(sampler.summary().final_counters[0], 3);

  // Header and summary frame the document: 7 lines in total.
  EXPECT_NE(sampler.header_json().find("\"kind\":\"header\""),
            std::string::npos);
  EXPECT_NE(sampler.header_json().find("\"schema_version\":1"),
            std::string::npos);
  EXPECT_NE(sampler.summary_json().find("\"timeline_samples\":5"),
            std::string::npos);
  const std::string doc = sampler.RenderJsonl();
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '\n'), 7);
}

TEST(TimelineSampler, NoGridSampleBeforeEndStillEmitsFinalRow) {
  TimelineSampler sampler(BufferedTimeline(1000.0));
  int64_t issued = 9;
  sampler.registry()->AddCounter("issued", [&issued] { return issued; });
  ASSERT_TRUE(sampler.FinishAt(10.0).ok());
  ASSERT_EQ(sampler.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.rows()[0].t, 10.0);
  EXPECT_EQ(sampler.summary().final_counters[0], 9);
}

TEST(TimelineSampler, BoxIndexStampsRows) {
  TimelineConfig config = BufferedTimeline(5.0);
  config.box = 3;
  TimelineSampler sampler(config);
  sampler.registry()->AddGauge("queue_depth", [] { return 1.0; });
  ASSERT_TRUE(sampler.FinishAt(5.0).ok());
  EXPECT_NE(sampler.rows()[0].json.find("\"box\":3"), std::string::npos);
  // The header carries no box: the farm shares one header across boxes.
  EXPECT_EQ(sampler.header_json().find("\"box\""), std::string::npos);
}

// --- Simulator integration ---

struct Rig {
  explicit Rig(const JukeboxConfig& jb_config, const LayoutSpec& layout)
      : jukebox(jb_config),
        catalog(LayoutBuilder::Build(&jukebox, layout).value()) {}

  Jukebox jukebox;
  Catalog catalog;
};

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;
  return config;
}

SimulationConfig ShortSim(QueuingModel model) {
  SimulationConfig config;
  config.duration_seconds = 200'000;
  config.warmup_seconds = 20'000;
  config.workload.model = model;
  config.workload.queue_length = 40;
  config.workload.mean_interarrival_seconds = 120;
  config.workload.seed = 17;
  return config;
}

SimulationResult RunSingleDrive(const SimulationConfig& config) {
  Rig rig(PaperJukebox(), LayoutSpec{});
  GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                        TapePolicy::kMaxBandwidth, /*dynamic=*/true);
  Simulator sim(&rig.jukebox, &rig.catalog, &sched, config);
  return sim.Run();
}

TEST(SimulatorTimeline, ResultsIdenticalWithTimelineOn) {
  const SimulationConfig off = ShortSim(QueuingModel::kOpen);
  SimulationConfig on = off;
  on.timeline = BufferedTimeline(10'000.0);

  const SimulationResult a = RunSingleDrive(off);
  const SimulationResult b = RunSingleDrive(on);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.issued_requests, b.issued_requests);
  EXPECT_DOUBLE_EQ(a.throughput_mb_per_s, b.throughput_mb_per_s);
  EXPECT_DOUBLE_EQ(a.mean_delay_seconds, b.mean_delay_seconds);
  EXPECT_DOUBLE_EQ(a.p99_delay_seconds, b.p99_delay_seconds);
  EXPECT_DOUBLE_EQ(a.mean_outstanding, b.mean_outstanding);
  EXPECT_DOUBLE_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_EQ(a.counters.tape_switches, b.counters.tape_switches);
}

TEST(SimulatorTimeline, FinalCountersMatchResultTotals) {
  SimulationConfig config = ShortSim(QueuingModel::kClosed);
  config.timeline = BufferedTimeline(10'000.0);

  Rig rig(PaperJukebox(), LayoutSpec{});
  GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                        TapePolicy::kMaxBandwidth, /*dynamic=*/true);
  Simulator sim(&rig.jukebox, &rig.catalog, &sched, config);
  const SimulationResult result = sim.Run();

  const TimelineSampler* timeline = sim.timeline();
  ASSERT_NE(timeline, nullptr);
  EXPECT_GT(timeline->rows().size(), 10u);
  EXPECT_EQ(timeline->summary().samples,
            static_cast<int64_t>(timeline->rows().size()));

  const std::vector<std::string> names = timeline->counter_names();
  const std::vector<int64_t>& final_counters =
      timeline->summary().final_counters;
  ASSERT_EQ(names.size(), final_counters.size());
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "issued") {
      EXPECT_EQ(final_counters[i], result.issued_requests);
    } else if (names[i] == "completed") {
      EXPECT_EQ(final_counters[i], result.completed_total);
    } else if (names[i] == "failed") {
      EXPECT_EQ(final_counters[i], result.failed_requests);
    } else if (names[i] == "expired") {
      EXPECT_EQ(final_counters[i], result.expired_requests);
    } else if (names[i] == "shed") {
      EXPECT_EQ(final_counters[i], result.shed_requests);
    }
  }

  // Rows are strictly time-ordered and the last one sits at the final
  // simulated clock, where the counters equal the whole-run totals.
  double last = 0;
  for (const TimelineSampler::Row& row : timeline->rows()) {
    EXPECT_GT(row.t, last);
    last = row.t;
  }
  EXPECT_DOUBLE_EQ(last, result.simulated_seconds);
}

TEST(SimulatorTimeline, TenantClassesGetPerClassStats) {
  SimulationConfig config = ShortSim(QueuingModel::kOpen);
  config.workload.tenant_classes.resize(2);
  config.workload.tenant_classes[0].weight = 1.0;
  config.workload.tenant_classes[1].weight = 2.0;
  config.timeline = BufferedTimeline(20'000.0);

  Rig rig(PaperJukebox(), LayoutSpec{});
  GreedyScheduler sched(&rig.jukebox, &rig.catalog,
                        TapePolicy::kMaxBandwidth, /*dynamic=*/true);
  Simulator sim(&rig.jukebox, &rig.catalog, &sched, config);
  (void)sim.Run();
  const TimelineSampler* timeline = sim.timeline();
  ASSERT_NE(timeline, nullptr);
  EXPECT_NE(timeline->header_json().find("class0_completed"),
            std::string::npos);
  EXPECT_NE(timeline->header_json().find("class1_delay"),
            std::string::npos);
}

// --- MultiDriveSimulator integration ---

TEST(MultiDriveTimeline, ResultsIdenticalWithTimelineOn) {
  const SimulationConfig off = ShortSim(QueuingModel::kClosed);
  SimulationConfig on = off;
  on.timeline = BufferedTimeline(10'000.0);
  MultiDriveConfig drive_config;
  drive_config.num_drives = 2;

  Rig rig_a(PaperJukebox(), LayoutSpec{});
  MultiDriveSimulator sim_a(&rig_a.jukebox, &rig_a.catalog, drive_config,
                            off);
  const SimulationResult a = sim_a.Run();

  Rig rig_b(PaperJukebox(), LayoutSpec{});
  MultiDriveSimulator sim_b(&rig_b.jukebox, &rig_b.catalog, drive_config,
                            on);
  const SimulationResult b = sim_b.Run();

  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.issued_requests, b.issued_requests);
  EXPECT_DOUBLE_EQ(a.throughput_mb_per_s, b.throughput_mb_per_s);
  EXPECT_DOUBLE_EQ(a.mean_delay_seconds, b.mean_delay_seconds);
  EXPECT_DOUBLE_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_EQ(sim_a.stats().claim_conflicts, sim_b.stats().claim_conflicts);

  const TimelineSampler* timeline = sim_b.timeline();
  ASSERT_NE(timeline, nullptr);
  EXPECT_GT(timeline->rows().size(), 10u);
  // Counter registration order: issued, completed, ...
  EXPECT_EQ(timeline->summary().final_counters[1], b.completed_total);
}

// --- Farm integration: per-box files + merged file, thread invariance ---

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

FarmConfig TimelineFarm(int32_t boxes, int64_t total_queue) {
  FarmConfig config;
  config.num_jukeboxes = boxes;
  config.per_jukebox.algorithm =
      AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
  config.per_jukebox.sim.duration_seconds = 150'000;
  config.per_jukebox.sim.warmup_seconds = 15'000;
  config.per_jukebox.sim.workload.queue_length = total_queue;
  config.per_jukebox.sim.workload.seed = 77;
  return config;
}

TEST(FarmTimeline, MergedTimelineByteIdenticalAcrossThreadCounts) {
  const std::string dir = ::testing::TempDir();
  FarmConfig config = TimelineFarm(3, 60);
  config.per_jukebox.sim.timeline.interval_seconds = 15'000;

  config.threads = 1;
  config.per_jukebox.sim.timeline.out = dir + "/farm_t1.jsonl";
  (void)FarmSimulator(config).Run();

  config.threads = 3;
  config.per_jukebox.sim.timeline.out = dir + "/farm_t3.jsonl";
  (void)FarmSimulator(config).Run();

  const std::string merged_t1 = ReadFileOrDie(dir + "/farm_t1.jsonl");
  const std::string merged_t3 = ReadFileOrDie(dir + "/farm_t3.jsonl");
  EXPECT_FALSE(merged_t1.empty());
  EXPECT_EQ(merged_t1, merged_t3);

  // The merged summary line announces the box count.
  EXPECT_NE(merged_t1.find("\"boxes\":3"), std::string::npos);

  // Per-box files exist, carry the box stamp, and are thread-invariant.
  for (int box = 0; box < 3; ++box) {
    const std::string suffix = ".box" + std::to_string(box) + ".jsonl";
    const std::string t1 = ReadFileOrDie(dir + "/farm_t1" + suffix);
    const std::string t3 = ReadFileOrDie(dir + "/farm_t3" + suffix);
    EXPECT_FALSE(t1.empty());
    EXPECT_EQ(t1, t3);
    EXPECT_NE(t1.find("\"box\":" + std::to_string(box)), std::string::npos);
    std::remove((dir + "/farm_t1" + suffix).c_str());
    std::remove((dir + "/farm_t3" + suffix).c_str());
  }
  std::remove((dir + "/farm_t1.jsonl").c_str());
  std::remove((dir + "/farm_t3.jsonl").c_str());
}

TEST(FarmTimeline, ResultsUnchangedByTimeline) {
  FarmConfig config = TimelineFarm(2, 40);
  config.threads = 2;

  const FarmResult off = FarmSimulator(config).Run();
  config.per_jukebox.sim.timeline.interval_seconds = 20'000;
  config.per_jukebox.sim.timeline.out =
      ::testing::TempDir() + "/farm_inert.jsonl";
  const FarmResult on = FarmSimulator(config).Run();

  EXPECT_EQ(off.aggregate.completed_requests,
            on.aggregate.completed_requests);
  EXPECT_DOUBLE_EQ(off.aggregate.throughput_mb_per_s,
                   on.aggregate.throughput_mb_per_s);
  EXPECT_DOUBLE_EQ(off.aggregate.mean_delay_seconds,
                   on.aggregate.mean_delay_seconds);
  EXPECT_EQ(off.completions_per_jukebox, on.completions_per_jukebox);

  std::remove((::testing::TempDir() + "/farm_inert.jsonl").c_str());
  std::remove((::testing::TempDir() + "/farm_inert.box0.jsonl").c_str());
  std::remove((::testing::TempDir() + "/farm_inert.box1.jsonl").c_str());
}

// --- Config validation ---

TEST(TimelineConfig, Validation) {
  SimulationConfig config = ShortSim(QueuingModel::kClosed);
  EXPECT_TRUE(config.Validate().ok());
  config.timeline.interval_seconds = -1;
  EXPECT_FALSE(config.Validate().ok());
  config.timeline.interval_seconds = 0;
  config.timeline.out = "somewhere.jsonl";
  EXPECT_FALSE(config.Validate().ok());
  config.timeline.interval_seconds = 100;
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace tapejuke
