// Scrub/repair subsystem tests: config validation and serialization
// gating, background-request ordering and piggybacking in the scheduler,
// end-to-end repair with the live-replica counterfactual identity,
// detection-only scrub, the token-bucket bandwidth ceiling, and
// thread-count invariance of the whole machinery.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/results_io.h"
#include "core/sweep_runner.h"
#include "sim/repair.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace tapejuke {
namespace {

std::string ToJson(const SimulationResult& result) {
  std::ostringstream os;
  JsonWriter w(&os);
  WriteJson(&w, result);
  return os.str();
}

std::string ToJson(const SimulationConfig& config) {
  std::ostringstream os;
  JsonWriter w(&os);
  WriteJson(&w, config);
  return os.str();
}

/// Idle-heavy open-model run (scrub and repair live off idle drive time)
/// with region-only permanent media errors and ~10% spare slots per tape.
ExperimentConfig RepairExperiment(uint64_t seed) {
  ExperimentConfig config;
  // Small tapes (100 slots) so full scrub passes fit in the idle time of
  // one test-sized run.
  config.jukebox.timing.tape_capacity_mb = 1600;
  config.layout.num_replicas = 2;
  config.layout.start_position = 1.0;
  const Jukebox probe(config.jukebox);
  config.layout.logical_blocks_override =
      LayoutBuilder::MaxLogicalBlocks(probe, config.layout) * 9 / 10;
  config.sim.duration_seconds = 600'000;
  config.sim.warmup_seconds = 0;
  config.sim.workload.model = QueuingModel::kOpen;
  config.sim.workload.mean_interarrival_seconds = 240;
  config.sim.workload.seed = seed;
  config.sim.faults.permanent_media_error_prob = 5e-3;
  config.sim.faults.transient_read_error_prob = 0.01;
  config.sim.faults.max_read_retries = 3;
  config.sim.repair.enable_repair = true;
  config.sim.repair.scrub_interval_seconds = 50'000;
  config.sim.repair.repair_bandwidth_mb_per_s = 20;
  config.algorithm = AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
  return config;
}

// --- Configuration ----------------------------------------------------------

TEST(RepairConfigTest, ValidateRejectsNegativeKnobs) {
  RepairConfig config;
  config.scrub_interval_seconds = -1;
  EXPECT_FALSE(config.Validate().ok());
  config = RepairConfig{};
  config.repair_bandwidth_mb_per_s = -2;
  EXPECT_FALSE(config.Validate().ok());
  config = RepairConfig{};
  config.repair_bandwidth_mb_per_s = 1;
  config.repair_burst_mb = -1;  // a rate needs a usable bucket
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(RepairConfig{}.Validate().ok());
}

TEST(RepairConfigTest, RepairRequiresFaultInjection) {
  SimulationConfig sim;
  sim.repair.enable_repair = true;
  const Status status = sim.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("fault injection"), std::string::npos);
  // With a fault rate the same config is fine.
  sim.faults.permanent_media_error_prob = 1e-3;
  EXPECT_TRUE(sim.Validate().ok());
}

TEST(RepairConfigTest, DisabledRepairIsNotSerialized) {
  SimulationConfig sim;
  sim.faults.permanent_media_error_prob = 1e-3;
  EXPECT_EQ(ToJson(sim).find("\"repair\""), std::string::npos);
  sim.repair.scrub_interval_seconds = 1000;
  EXPECT_NE(ToJson(sim).find("\"repair\""), std::string::npos);
}

// --- Background request ordering -------------------------------------------

TEST(BackgroundRequests, OrderedBehindClientsAndPiggybacked) {
  // Tape 0 holds the client's block 0 and background block 2; tape 1 holds
  // background block 1. The client sweep goes to tape 0 and takes block
  // 2's read along for free; block 1 waits until no client work is left.
  TinyRig rig(/*num_tapes=*/2);
  rig.Place(0, 0, 1);
  rig.Place(2, 0, 5);
  rig.Place(1, 1, 2);
  const Catalog catalog = rig.BuildCatalog();
  const std::unique_ptr<Scheduler> scheduler =
      CreateScheduler(AlgorithmSpec::Parse("dynamic-max-bandwidth").value(),
                      &rig.jukebox(), &catalog);

  scheduler->OnArrival(Request{0, 0, 0.0}, 0);
  scheduler->EnqueueBackground(
      Request{kBackgroundIdBase, 1, 0.0, RequestClass::kBackground});
  scheduler->EnqueueBackground(
      Request{kBackgroundIdBase + 1, 2, 0.0, RequestClass::kBackground});
  EXPECT_EQ(scheduler->background_size(), 2u);

  EXPECT_EQ(scheduler->MajorReschedule(), 0)
      << "client work decides the tape even with background queued";
  EXPECT_EQ(scheduler->sweep_size(), 2u) << "block 2 piggybacks";
  EXPECT_EQ(scheduler->background_size(), 1u);
  std::vector<BlockId> served;
  while (auto entry = scheduler->PopNext()) {
    served.push_back(entry->block);
    for (const Request& r : entry->requests) {
      EXPECT_EQ(r.cls, entry->block == 0 ? RequestClass::kClient
                                         : RequestClass::kBackground);
    }
  }
  EXPECT_EQ(served, (std::vector<BlockId>{0, 2}));

  // No client work left: the background fallback picks tape 1.
  EXPECT_TRUE(scheduler->HasWork());
  EXPECT_EQ(scheduler->MajorReschedule(), 1);
  const std::optional<ServiceEntry> entry = scheduler->PopNext();
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->block, 1);
  EXPECT_FALSE(scheduler->HasWork());
}

// --- End-to-end repair ------------------------------------------------------

TEST(RepairEndToEnd, RepairsCompleteAndBeatTheCounterfactual) {
  const ExperimentConfig config = RepairExperiment(3);
  const ExperimentResult result = ExperimentRunner::Run(config).value();
  const SimulationResult& sim = result.sim;
  ASSERT_TRUE(sim.fault_injection);
  ASSERT_TRUE(sim.repair_enabled);
  const RepairStats& repair = sim.repair;

  EXPECT_GT(repair.scrub_passes, 0);
  EXPECT_GT(repair.scrub_blocks_read, 0);
  EXPECT_GT(repair.repairs_enqueued, 0);
  EXPECT_GT(repair.repairs_completed, 0);
  // Task conservation: every enqueued task completed, was abandoned, or is
  // still in the backlog.
  EXPECT_EQ(repair.repairs_enqueued,
            repair.repairs_completed + repair.repairs_abandoned +
                repair.backlog_final);
  // Bounded time-to-re-protection.
  EXPECT_GT(repair.reprotect_seconds_sum, 0);
  EXPECT_LE(repair.reprotect_seconds_max, sim.simulated_seconds);

  // The run ends strictly better protected than its own no-repair
  // counterfactual; exactly repairs_completed replicas better, in fact.
  const double total = static_cast<double>(result.layout.total_copies);
  const double counterfactual =
      1.0 - static_cast<double>(sim.faults.replicas_masked) / total;
  EXPECT_GT(sim.live_replica_fraction, counterfactual);
  EXPECT_NEAR(sim.live_replica_fraction,
              counterfactual +
                  static_cast<double>(repair.repairs_completed) / total,
              1e-12);

  EXPECT_EQ(sim.completed_total + sim.failed_requests +
                sim.outstanding_at_end,
            sim.issued_requests);
}

TEST(RepairEndToEnd, DetectionOnlyScrubRepairsNothing) {
  ExperimentConfig config = RepairExperiment(7);
  config.sim.repair.enable_repair = false;  // scrub still on
  const SimulationResult sim = ExperimentRunner::Run(config).value().sim;
  ASSERT_TRUE(sim.repair_enabled);
  EXPECT_GT(sim.repair.scrub_passes, 0);
  EXPECT_GT(sim.repair.scrub_errors_detected, 0)
      << "scrub must surface latent errors before clients do";
  EXPECT_EQ(sim.repair.repairs_enqueued, 0);
  EXPECT_EQ(sim.repair.repairs_completed, 0);
  EXPECT_EQ(sim.repair.repair_write_seconds, 0.0);
  // Scrub-detected errors are masked in the catalog like client-detected
  // ones: the live fraction matches the no-repair identity exactly.
  EXPECT_GT(sim.faults.replicas_masked, 0);
}

TEST(RepairEndToEnd, TokenBucketBoundsBackgroundIO) {
  // A hard token-bucket invariant: total background I/O (scrub reads +
  // repair writes, in MB) never exceeds burst + rate * elapsed.
  ExperimentConfig config = RepairExperiment(11);
  config.sim.repair.repair_bandwidth_mb_per_s = 0.5;
  config.sim.repair.repair_burst_mb = 16;
  const SimulationResult sim = ExperimentRunner::Run(config).value().sim;
  ASSERT_TRUE(sim.repair_enabled);
  const double block_mb =
      static_cast<double>(config.jukebox.block_size_mb);
  const double background_mb =
      static_cast<double>(sim.repair.scrub_blocks_read +
                          sim.repair.repairs_completed) *
      block_mb;
  EXPECT_LE(background_mb,
            config.sim.repair.repair_burst_mb +
                config.sim.repair.repair_bandwidth_mb_per_s *
                    sim.simulated_seconds);

  // The same run unmetered does strictly more scrubbing.
  ExperimentConfig unmetered = RepairExperiment(11);
  unmetered.sim.repair.repair_bandwidth_mb_per_s = 0;
  const SimulationResult fast = ExperimentRunner::Run(unmetered).value().sim;
  EXPECT_GT(fast.repair.scrub_blocks_read, sim.repair.scrub_blocks_read);
}

TEST(RepairEndToEnd, CountersAreThreadCountInvariant) {
  std::vector<ExperimentConfig> grid;
  for (const uint64_t seed : {3u, 7u}) {
    ExperimentConfig config = RepairExperiment(seed);
    config.sim.duration_seconds = 300'000;
    grid.push_back(config);
  }
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 8;
  const auto a = SweepRunner(serial).Run(grid);
  const auto b = SweepRunner(parallel).Run(grid);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(ToJson((*a)[i].sim), ToJson((*b)[i].sim)) << "point " << i;
  }
}

TEST(RepairEndToEnd, DisabledRepairLeavesNoTraceInResults) {
  // Faults on, repair off: no repair counters appear in the serialized
  // result, and the live fraction matches the no-repair identity.
  ExperimentConfig config = RepairExperiment(5);
  config.sim.repair = RepairConfig{};
  const ExperimentResult result = ExperimentRunner::Run(config).value();
  const SimulationResult& sim = result.sim;
  EXPECT_FALSE(sim.repair_enabled);
  EXPECT_EQ(ToJson(sim).find("\"repair\""), std::string::npos);
  const double total = static_cast<double>(result.layout.total_copies);
  EXPECT_NEAR(sim.live_replica_fraction,
              1.0 - static_cast<double>(sim.faults.replicas_masked) / total,
              1e-12);
}

}  // namespace
}  // namespace tapejuke
