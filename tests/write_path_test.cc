// Tests for the delta-staging write path.

#include "sim/write_path.h"

#include <gtest/gtest.h>

#include "layout/placement.h"
#include "sched/greedy_scheduler.h"

namespace tapejuke {
namespace {

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;
  return config;
}

struct Rig {
  explicit Rig(int32_t num_replicas = 0)
      : jukebox(PaperJukebox()),
        catalog(LayoutBuilder::Build(&jukebox, MakeLayout(num_replicas))
                    .value()),
        scheduler(&jukebox, &catalog, TapePolicy::kMaxBandwidth,
                  /*dynamic=*/true) {}

  static LayoutSpec MakeLayout(int32_t num_replicas) {
    LayoutSpec layout;
    layout.num_replicas = num_replicas;
    layout.start_position = num_replicas == 0 ? 0.0 : 1.0;
    return layout;
  }

  Jukebox jukebox;
  Catalog catalog;
  GreedyScheduler scheduler;
};

SimulationConfig ShortSim(QueuingModel model = QueuingModel::kClosed) {
  SimulationConfig config;
  config.duration_seconds = 300'000;
  config.warmup_seconds = 30'000;
  config.workload.model = model;
  config.workload.queue_length = 40;
  config.workload.mean_interarrival_seconds = 90;
  config.workload.seed = 41;
  return config;
}

TEST(WritePathConfig, Validation) {
  WritePathConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.buffer_capacity_blocks = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = WritePathConfig{};
  config.hot_write_fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(WritePath, WritesAreStagedAndFlushed) {
  Rig rig;
  WritePathConfig writes;
  writes.mean_write_interarrival_seconds = 200;
  WritebackSimulator sim(&rig.jukebox, &rig.catalog, &rig.scheduler,
                         ShortSim(), writes);
  const SimulationResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 100);
  const WritePathStats& stats = sim.stats();
  EXPECT_GT(stats.writes_accepted, 1000);
  EXPECT_GT(stats.blocks_flushed, 0);
  EXPECT_GT(stats.piggyback_flushes, 0);
  // The staging buffer bounds occupancy (capacity + one inter-flush burst).
  EXPECT_LE(stats.max_buffer_occupancy,
            writes.buffer_capacity_blocks + 128);
}

TEST(WritePath, ReplicatedBlocksDirtyEveryCopy) {
  Rig rig(/*num_replicas=*/9);
  WritePathConfig writes;
  writes.mean_write_interarrival_seconds = 500;
  writes.hot_write_fraction = 1.0;  // every write hits a hot block
  WritebackSimulator sim(&rig.jukebox, &rig.catalog, &rig.scheduler,
                         ShortSim(), writes);
  sim.Run();
  const WritePathStats& stats = sim.stats();
  ASSERT_GT(stats.writes_accepted, 100);
  // Each hot write dirties up to 10 copies (duplicates collapse).
  EXPECT_GT(static_cast<double>(stats.dirty_updates_created),
            5.0 * static_cast<double>(stats.writes_accepted));
}

TEST(WritePath, WriteTrafficDegradesReads) {
  auto run = [](double write_gap) {
    Rig rig;
    WritePathConfig writes;
    writes.mean_write_interarrival_seconds = write_gap;
    WritebackSimulator sim(&rig.jukebox, &rig.catalog, &rig.scheduler,
                           ShortSim(), writes);
    return sim.Run();
  };
  const SimulationResult none = run(0);      // writes disabled
  const SimulationResult heavy = run(60.0);  // one write per minute
  EXPECT_GT(none.requests_per_minute, heavy.requests_per_minute);
}

TEST(WritePath, NoWritesMatchesPlainSimulator) {
  Rig rig_a;
  WritePathConfig writes;
  writes.mean_write_interarrival_seconds = 0;  // disabled
  WritebackSimulator with(&rig_a.jukebox, &rig_a.catalog, &rig_a.scheduler,
                          ShortSim(), writes);
  const SimulationResult a = with.Run();

  Rig rig_b;
  Simulator plain(&rig_b.jukebox, &rig_b.catalog, &rig_b.scheduler,
                  ShortSim());
  const SimulationResult b = plain.Run();
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_DOUBLE_EQ(a.mean_delay_seconds, b.mean_delay_seconds);
}

TEST(WritePath, IdleFlushCleansBufferUnderLightLoad) {
  Rig rig;
  WritePathConfig writes;
  writes.mean_write_interarrival_seconds = 300;
  SimulationConfig sim_config = ShortSim(QueuingModel::kOpen);
  sim_config.workload.mean_interarrival_seconds = 600;  // mostly idle
  WritebackSimulator sim(&rig.jukebox, &rig.catalog, &rig.scheduler,
                         sim_config, writes);
  sim.Run();
  EXPECT_GT(sim.stats().idle_flushes, 0);
  // Idle cleaning keeps the buffer well under capacity.
  EXPECT_LT(sim.stats().max_buffer_occupancy,
            writes.buffer_capacity_blocks);
  EXPECT_EQ(sim.stats().forced_flushes, 0);
}

TEST(WritePath, ForcedFlushWhenBufferTooSmall) {
  Rig rig;
  WritePathConfig writes;
  writes.mean_write_interarrival_seconds = 30;  // write-heavy
  writes.buffer_capacity_blocks = 16;           // tiny buffer
  writes.piggyback = false;
  writes.idle_flush = false;
  WritebackSimulator sim(&rig.jukebox, &rig.catalog, &rig.scheduler,
                         ShortSim(), writes);
  sim.Run();
  EXPECT_GT(sim.stats().forced_flushes, 0);
}

}  // namespace
}  // namespace tapejuke
