// Tests for the workload extensions: Zipf popularity and closed-model
// think time.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/experiment.h"
#include "sim/workload.h"

namespace tapejuke {
namespace {

struct Rig {
  Rig() : jukebox(MakeConfig()) {
    catalog.emplace(LayoutBuilder::Build(&jukebox, LayoutSpec{}).value());
  }
  static JukeboxConfig MakeConfig() {
    JukeboxConfig config;
    config.num_tapes = 10;
    config.block_size_mb = 16;
    return config;
  }
  Jukebox jukebox;
  std::optional<Catalog> catalog;
};

TEST(ZipfWorkload, ValidatesTheta) {
  WorkloadConfig config;
  config.skew = SkewModel::kZipf;
  config.zipf_theta = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config.zipf_theta = 0.8;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ZipfWorkload, FrequenciesFollowPowerLaw) {
  Rig rig;
  WorkloadConfig config;
  config.skew = SkewModel::kZipf;
  config.zipf_theta = 1.0;
  config.seed = 3;
  WorkloadGenerator generator(&*rig.catalog, config);
  std::vector<int64_t> counts(
      static_cast<size_t>(rig.catalog->num_blocks()));
  const int64_t draws = 500'000;
  for (int64_t i = 0; i < draws; ++i) {
    ++counts[static_cast<size_t>(generator.NextBlock())];
  }
  // Rank 1 : rank 10 : rank 100 should scale ~ 1 : 1/10 : 1/100.
  EXPECT_NEAR(static_cast<double>(counts[9]) / counts[0], 0.1, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[99]) / counts[0], 0.01, 0.01);
}

TEST(ZipfWorkload, ThetaZeroIsUniform) {
  Rig rig;
  WorkloadConfig config;
  config.skew = SkewModel::kZipf;
  config.zipf_theta = 0.0;
  config.seed = 5;
  WorkloadGenerator generator(&*rig.catalog, config);
  int64_t low_half = 0;
  const int64_t draws = 200'000;
  for (int64_t i = 0; i < draws; ++i) {
    if (generator.NextBlock() < rig.catalog->num_blocks() / 2) ++low_half;
  }
  EXPECT_NEAR(static_cast<double>(low_half) / draws, 0.5, 0.01);
}

TEST(ZipfWorkload, HigherThetaConcentratesOnHotRegion) {
  // Because block id == popularity rank and the layout places low ids in
  // the hot region, Zipf skew composes with placement: the hot-region hit
  // fraction grows with theta.
  Rig rig;
  auto hot_fraction = [&](double theta) {
    WorkloadConfig config;
    config.skew = SkewModel::kZipf;
    config.zipf_theta = theta;
    config.seed = 7;
    WorkloadGenerator generator(&*rig.catalog, config);
    int64_t hot = 0;
    const int64_t draws = 100'000;
    for (int64_t i = 0; i < draws; ++i) {
      if (rig.catalog->IsHot(generator.NextBlock())) ++hot;
    }
    return static_cast<double>(hot) / draws;
  };
  const double at_0 = hot_fraction(0.0);
  const double at_08 = hot_fraction(0.8);
  const double at_12 = hot_fraction(1.2);
  EXPECT_NEAR(at_0, 0.10, 0.01);  // uniform: PH itself
  EXPECT_GT(at_08, 0.4);
  EXPECT_GT(at_12, at_08);
}

TEST(ZipfWorkload, EndToEndSimulationBenefitsFromReplication) {
  auto run = [](int nr) {
    ExperimentConfig config;
    config.layout.num_replicas = nr;
    config.layout.start_position = nr == 0 ? 0.0 : 1.0;
    config.sim.duration_seconds = 400'000;
    config.sim.warmup_seconds = 40'000;
    config.sim.workload.skew = SkewModel::kZipf;
    config.sim.workload.zipf_theta = 0.9;
    config.sim.workload.queue_length = 60;
    config.sim.workload.seed = 13;
    return ExperimentRunner::Run(config).value().sim;
  };
  EXPECT_GT(run(9).requests_per_minute, run(0).requests_per_minute);
}

TEST(ThinkTime, ValidatesNonNegative) {
  WorkloadConfig config;
  config.think_time_seconds = -1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ThinkTime, ReducesEffectivePopulationAndThroughput) {
  auto run = [](double think) {
    ExperimentConfig config;
    config.sim.duration_seconds = 600'000;
    config.sim.warmup_seconds = 60'000;
    config.sim.workload.queue_length = 60;
    config.sim.workload.think_time_seconds = think;
    config.sim.workload.seed = 17;
    return ExperimentRunner::Run(config).value().sim;
  };
  const SimulationResult none = run(0);
  const SimulationResult some = run(600.0);  // 10-minute think periods
  EXPECT_LT(some.requests_per_minute, none.requests_per_minute);
  // Outstanding requests (in-system) drop below the population while
  // processes think.
  EXPECT_LT(some.mean_outstanding, 55.0);
  EXPECT_NEAR(none.mean_outstanding, 60.0, 0.5);
  // Shorter queues mean shorter in-system delays.
  EXPECT_LT(some.mean_delay_seconds, none.mean_delay_seconds);
}

TEST(ThinkTime, SystemDrainsAndRefills) {
  // Huge think time: the jukebox idles between bursts but still serves
  // everything (no deadlock in the idle-wait path).
  ExperimentConfig config;
  config.sim.duration_seconds = 400'000;
  config.sim.warmup_seconds = 0;
  config.sim.workload.queue_length = 5;
  config.sim.workload.think_time_seconds = 2000.0;
  config.sim.workload.seed = 19;
  const SimulationResult result =
      ExperimentRunner::Run(config).value().sim;
  EXPECT_GT(result.completed_requests, 100);
  EXPECT_LT(result.mean_outstanding, 4.0);
}

}  // namespace
}  // namespace tapejuke
