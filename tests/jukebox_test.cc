// Unit tests for the Jukebox hardware model.

#include "tape/jukebox.h"

#include <gtest/gtest.h>

namespace tapejuke {
namespace {

JukeboxConfig SmallConfig() {
  JukeboxConfig config;
  config.num_tapes = 4;
  config.block_size_mb = 16;
  return config;
}

TEST(JukeboxConfig, ValidateCatchesBadValues) {
  JukeboxConfig c = SmallConfig();
  EXPECT_TRUE(c.Validate().ok());
  c.num_tapes = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.block_size_mb = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.block_size_mb = c.timing.tape_capacity_mb + 1;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(Jukebox, Geometry) {
  Jukebox jukebox(SmallConfig());
  EXPECT_EQ(jukebox.num_tapes(), 4);
  EXPECT_EQ(jukebox.slots_per_tape(), 448);
  EXPECT_EQ(jukebox.total_slots(), 4 * 448);
  EXPECT_EQ(jukebox.mounted_tape(), kInvalidTape);
}

TEST(Jukebox, FirstSwitchHasNoRewindOrEject) {
  Jukebox jukebox(SmallConfig());
  // Empty drive: robot swap + load only.
  EXPECT_DOUBLE_EQ(jukebox.SwitchTo(2), 20.0 + 42.0);
  EXPECT_EQ(jukebox.mounted_tape(), 2);
  EXPECT_EQ(jukebox.counters().tape_switches, 1);
}

TEST(Jukebox, SwitchToMountedTapeIsFree) {
  Jukebox jukebox(SmallConfig());
  jukebox.SwitchTo(1);
  EXPECT_DOUBLE_EQ(jukebox.SwitchTo(1), 0.0);
  EXPECT_EQ(jukebox.counters().tape_switches, 1);
}

TEST(Jukebox, FullSwitchIncludesRewindEjectRobotLoad) {
  Jukebox jukebox(SmallConfig());
  jukebox.SwitchTo(0);
  jukebox.ReadBlockAt(1600);  // park the head mid-tape
  const double expected_rewind = 13.74 + 0.0286 * 1616 + 21.0;
  EXPECT_DOUBLE_EQ(jukebox.SwitchTo(3), expected_rewind + 19 + 20 + 42);
  EXPECT_EQ(jukebox.head(), 0);
  EXPECT_EQ(jukebox.counters().tape_switches, 2);
  EXPECT_DOUBLE_EQ(jukebox.counters().rewind_seconds, expected_rewind);
}

TEST(Jukebox, ReadBlockAccounting) {
  Jukebox jukebox(SmallConfig());
  jukebox.SwitchTo(0);
  const double op = jukebox.ReadBlockAt(320);
  EXPECT_DOUBLE_EQ(op, (14.342 + 0.028 * 320) + (0.38 + 1.77 * 16));
  EXPECT_EQ(jukebox.head(), 336);
  EXPECT_EQ(jukebox.counters().blocks_read, 1);
  EXPECT_EQ(jukebox.counters().mb_read, 16);
  EXPECT_GT(jukebox.counters().locate_seconds, 0);
  EXPECT_GT(jukebox.counters().read_seconds, 0);
}

TEST(Jukebox, CountersBusySecondsSumComponents) {
  Jukebox jukebox(SmallConfig());
  jukebox.SwitchTo(0);
  jukebox.ReadBlockAt(100);
  jukebox.ReadBlockAt(200);
  jukebox.SwitchTo(1);
  jukebox.ReadBlockAt(50);
  const JukeboxCounters& c = jukebox.counters();
  EXPECT_DOUBLE_EQ(c.BusySeconds(), c.rewind_seconds + c.switch_seconds +
                                        c.locate_seconds + c.read_seconds);
  EXPECT_EQ(c.blocks_read, 3);
  EXPECT_EQ(c.tape_switches, 2);
}

TEST(Jukebox, ResetCountersZeroes) {
  Jukebox jukebox(SmallConfig());
  jukebox.SwitchTo(0);
  jukebox.ReadBlockAt(100);
  jukebox.ResetCounters();
  EXPECT_EQ(jukebox.counters().blocks_read, 0);
  EXPECT_DOUBLE_EQ(jukebox.counters().BusySeconds(), 0.0);
}

TEST(Jukebox, ExplicitRewind) {
  Jukebox jukebox(SmallConfig());
  jukebox.SwitchTo(0);
  jukebox.ReadBlockAt(500);
  const double rewind = jukebox.Rewind();
  EXPECT_GT(rewind, 0);
  EXPECT_EQ(jukebox.head(), 0);
}

TEST(JukeboxDeathTest, BadTapeIdAborts) {
  Jukebox jukebox(SmallConfig());
  EXPECT_DEATH(jukebox.SwitchTo(99), "bad tape id");
  EXPECT_DEATH(jukebox.tape(-1), "bad tape id");
}

}  // namespace
}  // namespace tapejuke
