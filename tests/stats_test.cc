// Unit tests for RunningStat and Histogram.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace tapejuke {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsCombinedStream) {
  Rng rng(5);
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 1.5);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStat, Ci95ShrinksWithSamples) {
  Rng rng(6);
  RunningStat small;
  RunningStat large;
  for (int i = 0; i < 100; ++i) small.Add(rng.UniformDouble());
  for (int i = 0; i < 10000; ++i) large.Add(rng.UniformDouble());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);
  h.Add(0.0);
  h.Add(5.5);
  h.Add(9.999);
  h.Add(10.0);
  h.Add(100.0);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) h.Add(rng.UniformDouble());
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.Quantile(0.95), 0.95, 0.02);
  EXPECT_NEAR(h.Quantile(0.05), 0.05, 0.02);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(Histogram, QuantileClampsOutOfRangeMass) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 10; ++i) h.Add(-5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.1), 0.0);
}

TEST(Histogram, QuantileInOverflowMassReportsOverflowValue) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 90; ++i) h.Add(5.0);
  for (int i = 0; i < 10; ++i) h.Add(1e9);  // beyond range
  // p50 resolves inside the buckets; p99 lands in the overflow mass and
  // must report the caller-supplied value, not saturate at hi.
  EXPECT_NEAR(h.Quantile(0.50, 1e9), 5.0, 1.0 + 1e-9);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99, 1e9), 1e9);
  // The single-argument form keeps the old saturating behavior.
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);
}

TEST(Histogram, MergeSumsAllCounters) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.Add(-1.0);
  a.Add(2.5);
  a.Add(50.0);
  b.Add(2.5);
  b.Add(7.5);
  b.Add(60.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 6);
  EXPECT_EQ(a.underflow(), 1);
  EXPECT_EQ(a.overflow(), 2);
  // Two observations at 2.5 out of three in-range below 5 -> median there.
  EXPECT_NEAR(a.Quantile(0.5), 2.5, 1.0 + 1e-9);
}

TEST(Histogram, MergedQuantileMatchesSingleHistogram) {
  Histogram merged(0.0, 1.0, 100);
  Histogram whole(0.0, 1.0, 100);
  Histogram part(0.0, 1.0, 100);
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.UniformDouble();
    whole.Add(x);
    (i % 2 == 0 ? merged : part).Add(x);
  }
  merged.Merge(part);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.Quantile(0.5), whole.Quantile(0.5));
  EXPECT_DOUBLE_EQ(merged.Quantile(0.95), whole.Quantile(0.95));
}

TEST(Histogram, AsciiRendersOneLinePerBucket) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

}  // namespace
}  // namespace tapejuke
