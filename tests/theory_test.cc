// Property tests for the §3.3 formal results: the envelope algorithm's
// extension cost is (a) never below the brute-force optimum and (b) within
// the Theorem 2 harmonic bound, across randomized small instances.

#include "sched/theory.h"

#include <gtest/gtest.h>

#include <set>

#include "sched/envelope_scheduler.h"
#include "test_util.h"
#include "util/rng.h"

namespace tapejuke {
namespace {

TEST(HarmonicNumber, KnownValues) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_NEAR(HarmonicNumber(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(ExtensionCost, SingleTapeRoundTrip) {
  TimingModel model{TimingParams::Exabyte8505XL()};
  ExtensionProblem problem;
  problem.model = &model;
  problem.block_mb = 16;
  problem.mounted = 0;
  problem.initial_envelope = {32, 0};
  problem.options = {{Replica{0, 5, 80}}};
  const double cost = ExtensionCost(problem, {0});
  // Locate 32 -> 80, read, locate back 96 -> 32; no surcharge (mounted).
  const double expected = model.LocateAndReadTime(32, 80, 16) +
                          model.LocateTime(96, 32);
  EXPECT_DOUBLE_EQ(cost, expected);
}

TEST(ExtensionCost, UntouchedTapePaysSwitchSurcharge) {
  TimingModel model{TimingParams::Exabyte8505XL()};
  ExtensionProblem problem;
  problem.model = &model;
  problem.block_mb = 16;
  problem.mounted = 0;
  problem.initial_envelope = {32, 0};
  problem.options = {{Replica{1, 0, 0}}};
  const double cost = ExtensionCost(problem, {0});
  const double expected = model.SwitchTime() +
                          model.LocateAndReadTime(0, 0, 16) +
                          model.LocateTime(16, 0);
  EXPECT_DOUBLE_EQ(cost, expected);
}

TEST(ExtensionCost, DuplicatePositionsReadOnce) {
  TimingModel model{TimingParams::Exabyte8505XL()};
  ExtensionProblem problem;
  problem.model = &model;
  problem.block_mb = 16;
  problem.mounted = 0;
  problem.initial_envelope = {0};
  problem.options = {{Replica{0, 2, 32}}, {Replica{0, 2, 32}}};
  EXPECT_DOUBLE_EQ(ExtensionCost(problem, {0, 0}),
                   ExtensionCost({problem.model, 16, 0, {0},
                                  {{Replica{0, 2, 32}}}},
                                 {0}));
}

TEST(OptimalExtensionCost, PicksTheCheaperReplica) {
  TimingModel model{TimingParams::Exabyte8505XL()};
  ExtensionProblem problem;
  problem.model = &model;
  problem.block_mb = 16;
  problem.mounted = 0;
  problem.initial_envelope = {32, 32};
  // Near copy on the mounted tape vs far copy on tape 1.
  problem.options = {{Replica{0, 2, 32}, Replica{1, 9, 144}}};
  const double optimal = OptimalExtensionCost(problem);
  EXPECT_DOUBLE_EQ(optimal, ExtensionCost(problem, {0}));
  EXPECT_LT(optimal, ExtensionCost(problem, {1}));
}

TEST(OptimalExtensionCost, EmptyProblemIsFree) {
  TimingModel model{TimingParams::Exabyte8505XL()};
  ExtensionProblem problem;
  problem.model = &model;
  EXPECT_DOUBLE_EQ(OptimalExtensionCost(problem), 0.0);
}

// ---------------------------------------------------------------------------
// Randomized Theorem-2 property check.
// ---------------------------------------------------------------------------

class Theorem2Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem2Property, EnvelopeWithinHarmonicBoundOfOptimal) {
  Rng rng(GetParam());
  // Random instance: 3 tapes x 20 slots; two non-replicated anchor blocks
  // pin the initial envelope; 3-5 replicated blocks remain unscheduled.
  TinyRig rig(3, /*capacity_mb=*/320, /*block_size_mb=*/16);
  std::set<std::pair<TapeId, int64_t>> used;
  auto place_random = [&](BlockId block, TapeId tape, int64_t lo,
                          int64_t hi) {
    for (;;) {
      const int64_t slot =
          lo + static_cast<int64_t>(
                   rng.UniformUint64(static_cast<uint64_t>(hi - lo)));
      if (used.insert({tape, slot}).second) {
        rig.Place(block, tape, slot);
        return;
      }
    }
  };
  BlockId next_block = 0;
  // Anchors (non-replicated, requested) near the start of tapes 0 and 1
  // keep the initial envelope small so the replicated blocks stay outside.
  place_random(next_block++, 0, 0, 4);
  place_random(next_block++, 1, 0, 4);
  // Replicated blocks: 2-3 copies on distinct random tapes, farther out.
  const int num_replicated = 3 + static_cast<int>(rng.UniformUint64(3));
  for (int i = 0; i < num_replicated; ++i) {
    const int copies = 2 + static_cast<int>(rng.UniformUint64(2));
    std::set<TapeId> tapes;
    while (static_cast<int>(tapes.size()) < copies) {
      tapes.insert(static_cast<TapeId>(rng.UniformUint64(3)));
    }
    for (const TapeId t : tapes) place_random(next_block, t, 4, 20);
    ++next_block;
  }
  const Catalog catalog = rig.BuildCatalog();
  rig.jukebox().SwitchTo(0);

  EnvelopeScheduler sched(&rig.jukebox(), &catalog,
                          TapePolicy::kMaxRequests);
  std::vector<Request> requests;
  for (BlockId b = 0; b < next_block; ++b) {
    requests.push_back(Request{b, b, 0.0});
  }
  const auto result = sched.ComputeUpperEnvelope(requests);
  const auto n = static_cast<int64_t>(result.initially_unscheduled.size());
  if (n == 0) GTEST_SKIP() << "everything absorbed by the initial envelope";

  // Build the extension problem (S1 plus the remaining requests).
  ExtensionProblem problem;
  problem.model = &rig.model();
  problem.block_mb = rig.block_mb();
  problem.mounted = 0;
  problem.initial_envelope = result.initial_envelope;
  std::vector<int> envelope_choice;
  for (const Request& request : result.initially_unscheduled) {
    const ReplicaSpan replicas = catalog.ReplicasOf(request.block);
    problem.options.emplace_back(replicas.begin(), replicas.end());
    const Replica& chosen = result.assignment.at(request.id);
    int index = -1;
    for (size_t i = 0; i < problem.options.back().size(); ++i) {
      if (problem.options.back()[i] == chosen) {
        index = static_cast<int>(i);
      }
    }
    ASSERT_GE(index, 0) << "assignment must be one of the block's replicas";
    envelope_choice.push_back(index);
  }

  const double achieved = ExtensionCost(problem, envelope_choice);
  const double optimal = OptimalExtensionCost(problem);
  EXPECT_GE(achieved, optimal - 1e-9);
  const double bound = Theorem2Bound(problem, optimal, n);
  EXPECT_LE(achieved, bound + 1e-6)
      << "n=" << n << " optimal=" << optimal << " achieved=" << achieved;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Theorem2Property,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace tapejuke
