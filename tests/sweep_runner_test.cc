// Tests for the parallel sweep runner: seed derivation, thread-count
// invariance, in-order collection, and error propagation.

#include "core/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/results_io.h"

namespace tapejuke {
namespace {

ExperimentConfig QuickConfig(const char* algorithm) {
  ExperimentConfig config;
  config.sim.duration_seconds = 60'000;
  config.sim.warmup_seconds = 6'000;
  config.sim.workload.queue_length = 30;
  config.algorithm = AlgorithmSpec::Parse(algorithm).value();
  return config;
}

std::vector<ExperimentConfig> QuickGrid() {
  return {QuickConfig("fifo"), QuickConfig("static-round-robin"),
          QuickConfig("dynamic-max-bandwidth"),
          QuickConfig("envelope-max-bandwidth")};
}

std::string Serialize(const std::vector<ExperimentResult>& results) {
  std::ostringstream os;
  JsonWriter w(&os);
  w.BeginArray();
  for (const ExperimentResult& r : results) WriteJson(&w, r);
  w.EndArray();
  return os.str();
}

TEST(DerivePointSeed, IsDeterministic) {
  EXPECT_EQ(DerivePointSeed(1, 0), DerivePointSeed(1, 0));
  EXPECT_EQ(DerivePointSeed(99, 7), DerivePointSeed(99, 7));
}

TEST(DerivePointSeed, DistinctAcrossIndicesAndSeeds) {
  std::set<uint64_t> seeds;
  for (uint64_t base = 1; base <= 4; ++base) {
    for (uint64_t index = 0; index < 64; ++index) {
      seeds.insert(DerivePointSeed(base, index));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 64u);
}

TEST(SweepRunner, EffectiveConfigAppliesDerivedSeed) {
  SweepOptions options;
  options.base_seed = 17;
  SweepRunner runner(options);
  const ExperimentConfig point = QuickConfig("fifo");
  EXPECT_EQ(runner.EffectiveConfig(point, 3).sim.workload.seed,
            DerivePointSeed(17, 3));
  // Derivation off: the point keeps whatever seed its config carries.
  options.derive_point_seeds = false;
  SweepRunner passthrough(options);
  EXPECT_EQ(passthrough.EffectiveConfig(point, 3).sim.workload.seed,
            point.sim.workload.seed);
}

TEST(SweepRunner, ResultsAreBitIdenticalAcrossThreadCounts) {
  const std::vector<ExperimentConfig> grid = QuickGrid();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 8;
  const auto a = SweepRunner(serial).Run(grid);
  const auto b = SweepRunner(parallel).Run(grid);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(Serialize(a.value()), Serialize(b.value()));
}

TEST(SweepRunner, CollectsResultsInInputOrder) {
  SweepOptions options;
  options.threads = 4;
  const auto results = SweepRunner(options).Run(QuickGrid());
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 4u);
  EXPECT_EQ((*results)[0].algorithm_name, "fifo");
  EXPECT_EQ((*results)[1].algorithm_name, "static round-robin");
  EXPECT_EQ((*results)[2].algorithm_name, "dynamic max-bandwidth");
  EXPECT_EQ((*results)[3].algorithm_name, "max-bandwidth envelope");
}

TEST(SweepRunner, InvalidPointFailsFastNamingItsIndex) {
  std::vector<ExperimentConfig> grid = QuickGrid();
  grid[2].layout.hot_fraction = 2.0;  // fails Validate()
  const auto results = SweepRunner().Run(grid);
  ASSERT_FALSE(results.ok());
  EXPECT_NE(results.status().message().find("sweep point 2"),
            std::string::npos)
      << results.status();
}

TEST(SweepRunner, RunIndexedVisitsEveryIndex) {
  SweepOptions options;
  options.threads = 4;
  std::vector<std::atomic<int>> visits(23);
  const Status status =
      SweepRunner(options).RunIndexed(visits.size(), [&](size_t i) {
        ++visits[i];
        return Status::Ok();
      });
  ASSERT_TRUE(status.ok()) << status;
  for (size_t i = 0; i < visits.size(); ++i) EXPECT_EQ(visits[i], 1) << i;
}

TEST(SweepRunner, RunIndexedReportsLowestFailingIndex) {
  SweepOptions options;
  options.threads = 4;
  const Status status =
      SweepRunner(options).RunIndexed(16, [&](size_t i) {
        if (i % 5 == 3) {  // indices 3, 8, 13 fail
          return Status::InvalidArgument("boom");
        }
        return Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("sweep point 3"), std::string::npos)
      << status;
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(SweepRunner, RunIndexedCapturesExceptionsAsInternalStatus) {
  for (const int threads : {1, 4}) {
    SweepOptions options;
    options.threads = threads;
    std::vector<std::atomic<int>> visits(16);
    const Status status =
        SweepRunner(options).RunIndexed(visits.size(), [&](size_t i) {
          ++visits[i];
          if (i == 5) throw std::runtime_error("point 5 blew up");
          return Status::Ok();
        });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("sweep point 5"), std::string::npos)
        << status;
    EXPECT_NE(status.message().find("point 5 blew up"), std::string::npos)
        << status;
    // The throwing point must not have cancelled the others.
    for (size_t i = 0; i < visits.size(); ++i) EXPECT_EQ(visits[i], 1) << i;
  }
}

TEST(SweepRunner, FarmGridRunsAndMatchesSerial) {
  FarmConfig farm;
  farm.num_jukeboxes = 2;
  farm.per_jukebox = QuickConfig("dynamic-max-bandwidth");
  std::vector<FarmConfig> grid = {farm, farm};
  grid[1].per_jukebox.sim.workload.queue_length = 60;

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const auto a = SweepRunner(serial).RunFarms(grid);
  const auto b = SweepRunner(parallel).RunFarms(grid);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->size(), 2u);
  EXPECT_DOUBLE_EQ((*a)[0].aggregate.throughput_mb_per_s,
                   (*b)[0].aggregate.throughput_mb_per_s);
  EXPECT_DOUBLE_EQ((*a)[1].aggregate.mean_delay_seconds,
                   (*b)[1].aggregate.mean_delay_seconds);
}

}  // namespace
}  // namespace tapejuke
