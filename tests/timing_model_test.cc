// Unit tests for the §2.1 tape timing model.

#include "tape/timing_model.h"

#include <gtest/gtest.h>

namespace tapejuke {
namespace {

TEST(TimingParams, DefaultsMatchPaperConstants) {
  const TimingParams p = TimingParams::Exabyte8505XL();
  EXPECT_DOUBLE_EQ(p.fwd_short_startup, 4.834);
  EXPECT_DOUBLE_EQ(p.fwd_short_per_mb, 0.378);
  EXPECT_DOUBLE_EQ(p.fwd_long_startup, 14.342);
  EXPECT_DOUBLE_EQ(p.fwd_long_per_mb, 0.028);
  EXPECT_DOUBLE_EQ(p.rev_short_startup, 4.99);
  EXPECT_DOUBLE_EQ(p.rev_short_per_mb, 0.328);
  EXPECT_DOUBLE_EQ(p.rev_long_startup, 13.74);
  EXPECT_DOUBLE_EQ(p.rev_long_per_mb, 0.0286);
  EXPECT_DOUBLE_EQ(p.bot_extra_seconds, 21.0);
  EXPECT_DOUBLE_EQ(p.read_fwd_startup, 0.38);
  EXPECT_DOUBLE_EQ(p.read_per_mb, 1.77);
  // Tape switch total: 19 + 20 + 42 = 81 seconds.
  EXPECT_DOUBLE_EQ(p.eject_seconds + p.robot_seconds + p.load_seconds, 81.0);
  EXPECT_EQ(p.tape_capacity_mb, 7168);
}

TEST(TimingModel, ForwardLocateUsesShortAndLongRegimes) {
  const TimingModel model{TimingParams::Exabyte8505XL()};
  EXPECT_DOUBLE_EQ(model.ForwardLocateTime(0), 0.0);
  EXPECT_DOUBLE_EQ(model.ForwardLocateTime(1), 4.834 + 0.378);
  EXPECT_DOUBLE_EQ(model.ForwardLocateTime(28), 4.834 + 0.378 * 28);
  EXPECT_DOUBLE_EQ(model.ForwardLocateTime(29), 14.342 + 0.028 * 29);
  EXPECT_DOUBLE_EQ(model.ForwardLocateTime(1000), 14.342 + 0.028 * 1000);
}

TEST(TimingModel, ReverseLocateUsesShortAndLongRegimes) {
  const TimingModel model{TimingParams::Exabyte8505XL()};
  EXPECT_DOUBLE_EQ(model.ReverseLocateTime(0), 0.0);
  EXPECT_DOUBLE_EQ(model.ReverseLocateTime(28), 4.99 + 0.328 * 28);
  EXPECT_DOUBLE_EQ(model.ReverseLocateTime(29), 13.74 + 0.0286 * 29);
}

TEST(TimingModel, LocateToBeginningAddsRewindOverhead) {
  const TimingModel model{TimingParams::Exabyte8505XL()};
  EXPECT_DOUBLE_EQ(model.LocateTime(1000, 0),
                   13.74 + 0.0286 * 1000 + 21.0);
  // No surcharge when already at 0.
  EXPECT_DOUBLE_EQ(model.LocateTime(0, 0), 0.0);
}

TEST(TimingModel, ReadStartupDependsOnPrecedingLocate) {
  const TimingModel model{TimingParams::Exabyte8505XL()};
  EXPECT_DOUBLE_EQ(model.ReadTime(16, LocateKind::kForward),
                   0.38 + 1.77 * 16);
  EXPECT_DOUBLE_EQ(model.ReadTime(16, LocateKind::kReverse), 1.77 * 16);
  EXPECT_DOUBLE_EQ(model.ReadTime(16, LocateKind::kNone), 1.77 * 16);
  EXPECT_DOUBLE_EQ(model.ReadTime(0, LocateKind::kForward), 0.0);
}

TEST(TimingModel, SwitchTimes) {
  const TimingModel model{TimingParams::Exabyte8505XL()};
  EXPECT_DOUBLE_EQ(model.SwitchTime(), 81.0);
  // Full switch from position 500: rewind (long reverse + BOT) + switch.
  EXPECT_DOUBLE_EQ(model.FullSwitchTime(500),
                   13.74 + 0.0286 * 500 + 21.0 + 81.0);
  EXPECT_DOUBLE_EQ(model.FullSwitchTime(0), 81.0);
}

TEST(TimingModel, LocateTimeIsMonotoneInDistance) {
  const TimingModel model{TimingParams::Exabyte8505XL()};
  double prev = 0;
  for (int64_t k = 1; k <= 4096; k *= 2) {
    const double t = model.ForwardLocateTime(k);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(TimingModel, StreamingRate) {
  const TimingModel model{TimingParams::Exabyte8505XL()};
  EXPECT_NEAR(model.StreamingRateMBps(), 1.0 / 1.77, 1e-12);
}

TEST(TimingParams, ValidateRejectsBadValues) {
  TimingParams p;
  p.tape_capacity_mb = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = TimingParams{};
  p.read_per_mb = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = TimingParams{};
  p.fwd_short_startup = -1;
  EXPECT_FALSE(p.Validate().ok());
  EXPECT_TRUE(TimingParams{}.Validate().ok());
}

TEST(TimingParams, FastDriveIsUniformlyFaster) {
  const TimingModel fast{TimingParams::FastDrive()};
  const TimingModel base{TimingParams::Exabyte8505XL()};
  for (int64_t k : {1, 10, 100, 1000}) {
    EXPECT_LT(fast.ForwardLocateTime(k), base.ForwardLocateTime(k));
    EXPECT_LT(fast.ReverseLocateTime(k), base.ReverseLocateTime(k));
  }
  EXPECT_LT(fast.SwitchTime(), base.SwitchTime());
}

}  // namespace
}  // namespace tapejuke
